"""Tests for the checkpoint subsystem (serialisation, manager, faults)."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import testing
from repro.ckpt import (
    Checkpoint,
    CheckpointError,
    CheckpointManager,
    checksum,
    config_fingerprint,
    decode_state,
    encode_state,
    read_checkpoint,
    resolve_resume,
    rng_state,
    set_rng_state,
)
from repro.nn import SGD, Adam, CosineAnnealing, Parameter


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    testing.reset()


class TestSerialize:
    def test_roundtrip_nested_tree(self):
        state = {
            "arrays": {"w": np.arange(12.0).reshape(3, 4), "i": np.arange(5)},
            "scalars": [1, 2.5, True, None, "text"],
            "tuple": (1, (2, 3)),
            "empty": {},
        }
        out = decode_state(encode_state(state))
        np.testing.assert_array_equal(out["arrays"]["w"], state["arrays"]["w"])
        assert out["arrays"]["i"].dtype == state["arrays"]["i"].dtype
        assert out["scalars"] == state["scalars"]
        assert out["tuple"] == (1, (2, 3))
        assert out["empty"] == {}

    def test_float_bits_survive(self):
        values = np.array([1e-308, np.pi, -0.0, 1.0 / 3.0])
        out = decode_state(encode_state({"v": values, "s": float(np.pi)}))
        assert out["v"].tobytes() == values.tobytes()
        assert out["s"] == float(np.pi)

    def test_numpy_scalars_become_python(self):
        out = decode_state(
            encode_state({"f": np.float64(0.25), "i": np.int64(7), "b": np.bool_(True)})
        )
        assert out == {"f": 0.25, "i": 7, "b": True}

    def test_rng_state_roundtrip_bit_exact(self):
        rng = np.random.default_rng(123)
        rng.integers(0, 100, size=17)  # advance mid-stream
        saved = decode_state(encode_state({"rng": rng_state(rng)}))["rng"]
        expected = rng.integers(0, 1 << 40, size=8)
        fresh = np.random.default_rng(0)
        set_rng_state(fresh, saved)
        np.testing.assert_array_equal(
            fresh.integers(0, 1 << 40, size=8), expected
        )

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError, match="cannot checkpoint"):
            encode_state({"bad": object()})
        with pytest.raises(TypeError, match="keys must be str"):
            encode_state({1: "x"})

    def test_garbage_bytes_rejected(self):
        with pytest.raises(ValueError):
            decode_state(b"definitely not an npz archive")


class TestConfigFingerprint:
    def test_stable_and_order_insensitive(self):
        assert config_fingerprint({"a": 1, "b": 2}) == config_fingerprint(
            {"b": 2, "a": 1}
        )

    def test_sensitive_to_optimisation_fields(self):
        assert config_fingerprint({"lr": 1e-3}) != config_fingerprint({"lr": 1e-2})

    def test_volatile_fields_ignored(self):
        assert config_fingerprint(
            {"lr": 1e-3, "epochs": 10, "verbose": True, "resume_from": "auto"}
        ) == config_fingerprint({"lr": 1e-3, "epochs": 99, "verbose": False})


class TestOptimizerState:
    def _params(self):
        rng = np.random.default_rng(0)
        return [Parameter(rng.normal(size=(4, 3))), Parameter(rng.normal(size=(2,)))]

    def _step(self, optimizer, params, seed):
        rng = np.random.default_rng(seed)
        for param in params:
            param.grad = rng.normal(size=param.data.shape)
        optimizer.step()

    @pytest.mark.parametrize("factory", [
        lambda ps: Adam(ps, lr=1e-2, weight_decay=1e-3),
        lambda ps: SGD(ps, lr=1e-2, momentum=0.9),
    ])
    def test_resumed_trajectory_matches(self, factory):
        params_a = self._params()
        opt_a = factory(params_a)
        for seed in range(4):
            self._step(opt_a, params_a, seed)

        params_b = self._params()
        opt_b = factory(params_b)
        for seed in range(2):
            self._step(opt_b, params_b, seed)
        saved = decode_state(encode_state({
            "optimizer": opt_b.state_dict(),
            "params": [p.data.copy() for p in params_b],
        }))

        params_c = self._params()
        opt_c = factory(params_c)
        for param, array in zip(params_c, saved["params"]):
            param.data[...] = array
        opt_c.load_state_dict(saved["optimizer"])
        for seed in range(2, 4):
            self._step(opt_c, params_c, seed)
        for final, resumed in zip(params_a, params_c):
            np.testing.assert_array_equal(final.data, resumed.data)

    def test_shape_mismatch_rejected(self):
        opt = Adam(self._params())
        state = opt.state_dict()
        state["m"][0] = np.zeros((1, 1))
        with pytest.raises(ValueError, match="optimizer state mismatch"):
            opt.load_state_dict(state)

    def test_scheduler_state_roundtrip(self):
        opt = Adam(self._params(), lr=1e-2)
        sched = CosineAnnealing(opt, total_epochs=10)
        for _ in range(4):
            sched.step()
        saved = sched.state_dict()
        opt2 = Adam(self._params(), lr=1e-2)
        sched2 = CosineAnnealing(opt2, total_epochs=10)
        opt2.load_state_dict(opt.state_dict())
        sched2.load_state_dict(saved)
        assert sched2.step() == sched.step()
        assert opt2.lr == opt.lr


class TestCheckpointManager:
    def _state(self, step, fill):
        return {"step": step, "weights": np.full((4, 4), float(fill))}

    def test_save_load_roundtrip(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save(self._state(3, 1.5), step=3, metric=0.4)
        found = manager.load_latest()
        assert isinstance(found, Checkpoint)
        assert found.step == 3 and found.metric == 0.4
        np.testing.assert_array_equal(
            found.state["weights"], np.full((4, 4), 1.5)
        )

    def test_atomic_write_no_partial_file(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save(self._state(1, 1.0), step=1)
        with pytest.raises(testing.SimulatedCrash):
            with testing.CrashPoint(testing.CKPT_BEFORE_REPLACE):
                manager.save(self._state(2, 2.0), step=2)
        # The torn write left only a temp file; the manifest still points
        # at the previous snapshot and loading falls back to it.
        fresh = CheckpointManager(str(tmp_path))
        assert [entry["step"] for entry in fresh.entries()] == [1]
        assert fresh.load_latest().step == 1
        assert not any(
            name.endswith(".tmp") for name in os.listdir(tmp_path)
        ), "stale temp files must be cleaned on manager startup"

    def test_retention_keeps_last_n_plus_best(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), keep_last=2)
        metrics = [0.1, 0.9, 0.3, 0.2, 0.4]
        for step, metric in enumerate(metrics, start=1):
            manager.save(self._state(step, step), step=step, metric=metric)
        steps = [entry["step"] for entry in manager.entries()]
        assert steps == [2, 4, 5]  # newest two plus the best (0.9 at step 2)
        files = {entry["file"] for entry in manager.entries()}
        on_disk = {n for n in os.listdir(tmp_path) if n.endswith(".npz")}
        assert files == on_disk

    def test_corrupt_newest_falls_back_with_warning(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), keep_last=5)
        manager.save(self._state(1, 1.0), step=1)
        with testing.FaultyWrites(testing.CKPT_PAYLOAD_WRITE, mode="garble"):
            manager.save(self._state(2, 2.0), step=2)
        with pytest.warns(RuntimeWarning, match="checksum"):
            found = manager.load_latest()
        assert found.step == 1

    def test_truncated_newest_falls_back(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), keep_last=5)
        manager.save(self._state(1, 1.0), step=1)
        with testing.FaultyWrites(
            testing.CKPT_PAYLOAD_WRITE, mode="truncate", fraction=0.25
        ):
            manager.save(self._state(2, 2.0), step=2)
        with pytest.warns(RuntimeWarning, match="checksum"):
            found = manager.load_latest()
        assert found.step == 1

    def test_all_corrupt_returns_none(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        with testing.FaultyWrites(testing.CKPT_PAYLOAD_WRITE, mode="garble"):
            manager.save(self._state(1, 1.0), step=1)
        with pytest.warns(RuntimeWarning):
            assert manager.load_latest() is None

    def test_manifest_checksums_verify_against_disk(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), keep_last=4)
        for step in range(1, 4):
            manager.save(self._state(step, step), step=step)
        for entry in manager.entries():
            with open(tmp_path / entry["file"], "rb") as handle:
                assert checksum(handle.read()) == entry["sha256"]

    def test_corrupt_manifest_rebuilt_from_scan(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save(self._state(1, 1.0), step=1)
        manager.save(self._state(2, 2.0), step=2)
        with open(tmp_path / "manifest.json", "w", encoding="utf-8") as handle:
            handle.write("{not json at all")
        with pytest.warns(RuntimeWarning, match="manifest"):
            rebuilt = CheckpointManager(str(tmp_path))
        assert rebuilt.load_latest().step == 2

    def test_manifest_is_json_readable(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save(self._state(1, 1.0), step=1, metric=0.5)
        with open(manager.manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["checkpoints"][0]["metric"] == 0.5


class TestResolveResume:
    def test_none_is_fresh_start(self):
        assert resolve_resume(None) is None

    def test_auto_without_manager_rejected(self):
        with pytest.raises(CheckpointError, match="auto"):
            resolve_resume("auto")

    def test_auto_on_empty_directory_is_fresh_start(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        assert resolve_resume("auto", manager) is None

    def test_auto_finds_latest(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save({"step": 5, "tag": "latest"}, step=5)
        assert resolve_resume("auto", manager)["tag"] == "latest"

    def test_explicit_directory(self, tmp_path):
        CheckpointManager(str(tmp_path)).save({"step": 1, "tag": "dir"}, step=1)
        assert resolve_resume(str(tmp_path))["tag"] == "dir"

    def test_explicit_empty_directory_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="no valid checkpoint"):
            resolve_resume(str(tmp_path))

    def test_explicit_file(self, tmp_path):
        path = CheckpointManager(str(tmp_path)).save({"step": 2, "tag": "f"}, step=2)
        assert read_checkpoint(path)["tag"] == "f"
        assert resolve_resume(path)["tag"] == "f"

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            resolve_resume(str(tmp_path / "nope.npz"))


class TestFaultHarness:
    def test_crashpoint_counts_hits(self):
        with testing.CrashPoint("site:x", at=3) as crash:
            testing.check("site:x")
            testing.check("site:x")
            with pytest.raises(testing.SimulatedCrash):
                testing.check("site:x")
        assert crash.hits == 3 and crash.triggered
        testing.check("site:x")  # disarmed after exit

    def test_crashpoint_other_sites_unaffected(self):
        with testing.CrashPoint("site:x"):
            testing.check("site:y")

    def test_faulty_writes_targets_nth_write(self):
        payload = bytes(range(256)) * 8
        with testing.FaultyWrites("io:x", mode="truncate", at=2, fraction=0.5) as fw:
            first = testing.filter_bytes("io:x", payload)
            second = testing.filter_bytes("io:x", payload)
        assert first == payload
        assert len(second) == len(payload) // 2
        assert fw.corrupted

    def test_garble_changes_bytes_but_not_length(self):
        payload = bytes(range(256)) * 8
        with testing.FaultyWrites("io:x", mode="garble", seed=1):
            garbled = testing.filter_bytes("io:x", payload)
        assert len(garbled) == len(payload)
        assert garbled != payload
