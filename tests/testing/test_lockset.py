"""Lockset sanitizer coverage: the racy fixture class must be flagged,
its correctly locked twin must not, and an ABBA pair must trip the
lock-order watchdog before any thread can actually deadlock."""

from __future__ import annotations

import threading

import pytest

from repro.concurrency import new_lock, new_rlock, shared_state
from repro.testing import lockset
from repro.testing.lockset import (
    ConcurrencyHazard,
    DeadlockHazard,
    RaceHazard,
    SanitizedLock,
    sanitize,
)

THREADS = 4
ITERS = 200


@shared_state(guard="_lock")
class RacyCounter:
    """Deliberately broken: no lock anywhere near the writes."""

    def __init__(self):
        self.value = 0

    def bump(self):
        self.value = self.value + 1


@shared_state(guard="_lock")
class LockedCounter:
    """The correct twin: every write under the declared guard."""

    def __init__(self):
        self._lock = new_lock("test.LockedCounter")
        self.value = 0

    def bump(self):
        with self._lock:
            self.value = self.value + 1


@pytest.fixture
def sanitizer():
    """Arm for one test; leave a session-wide arming untouched."""
    was_armed = lockset.armed()
    lockset.arm()  # idempotent; instruments classes defined since
    yield
    if not was_armed:
        lockset.disarm()


@pytest.fixture
def disarmed_baseline():
    """Skip lifecycle tests that need a disarmed starting state."""
    if lockset.armed():
        pytest.skip("sanitizer is armed session-wide (REPRO_SANITIZE=1)")


def _hammer(target, threads=THREADS, iters=ITERS):
    """Drive ``target()`` from many threads; collect hazards raised."""
    barrier = threading.Barrier(threads)
    hazards = []

    def worker():
        barrier.wait()
        try:
            for _ in range(iters):
                target()
        except ConcurrencyHazard as hazard:
            hazards.append(hazard)

    workers = [threading.Thread(target=worker) for _ in range(threads)]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    return hazards


class TestRaceDetection:
    def test_racy_class_is_flagged(self, sanitizer):
        counter = RacyCounter()
        hazards = _hammer(counter.bump)
        assert hazards, "sanitizer missed an unsynchronized write"
        assert isinstance(hazards[0], RaceHazard)
        message = str(hazards[0])
        assert "RacyCounter.value" in message
        assert "previous write" in message and "current write" in message

    def test_locked_twin_is_clean(self, sanitizer):
        counter = LockedCounter()
        hazards = _hammer(counter.bump)
        assert hazards == []
        assert counter.value == THREADS * ITERS

    def test_single_thread_never_flags(self, sanitizer):
        counter = RacyCounter()
        for _ in range(ITERS):
            counter.bump()
        assert counter.value == ITERS

    def test_exempt_attrs_are_not_tracked(self, sanitizer):
        @shared_state(guard="_lock", exempt=("scratch",))
        class Scratchpad:
            def __init__(self):
                self.scratch = 0

            def note(self):
                self.scratch += 1

        lockset.arm()  # instrument the class registered after arming
        pad = Scratchpad()
        assert _hammer(pad.note) == []


class TestDeadlockWatchdog:
    def test_lock_inversion_is_reported(self, sanitizer):
        first = SanitizedLock("watchdog.first")
        second = SanitizedLock("watchdog.second")
        with first:
            with second:
                pass
        with pytest.raises(DeadlockHazard, match="lock-order inversion"):
            with second:
                with first:
                    pass

    def test_consistent_order_is_clean(self, sanitizer):
        first = SanitizedLock("order.first")
        second = SanitizedLock("order.second")
        for _ in range(3):
            with first:
                with second:
                    pass

    def test_transitive_inversion_is_reported(self, sanitizer):
        a = SanitizedLock("chain.a")
        b = SanitizedLock("chain.b")
        c = SanitizedLock("chain.c")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with pytest.raises(DeadlockHazard):
            with c:
                with a:
                    pass

    def test_self_deadlock_on_plain_lock(self, sanitizer):
        lock = new_lock("self.plain")
        with lock:
            with pytest.raises(DeadlockHazard, match="self-deadlock"):
                lock.acquire()

    def test_rlock_reentry_is_fine(self, sanitizer):
        lock = new_rlock("self.reentrant")
        with lock:
            with lock:
                pass


class TestArming:
    def test_factory_swap_round_trip(self, disarmed_baseline):
        with sanitize():
            assert isinstance(new_lock("probe"), SanitizedLock)
        assert isinstance(new_lock("probe"), threading.Lock().__class__)

    def test_arm_is_idempotent(self, disarmed_baseline):
        with sanitize():
            lockset.arm()
            assert lockset.armed()
        # An already-armed outer scope must survive a nested sanitize().
        with sanitize():
            with sanitize():
                pass
            assert lockset.armed()
        assert not lockset.armed()

    def test_disarmed_writes_are_untracked(self, disarmed_baseline):
        counter = RacyCounter()
        assert _hammer(counter.bump, threads=2, iters=50) == []

    def test_disarm_restores_setattr(self, disarmed_baseline):
        with sanitize():
            counter = RacyCounter()
            counter.bump()
        counter.value = 99  # plain setattr again, no tracking
        assert counter.value == 99


class TestAnnotatedProductionClasses:
    """The classes fixed in this pass must run hazard-free when armed."""

    def test_counter_registry_clean_under_sanitizer(self, sanitizer):
        from repro.perf import CounterRegistry

        registry = CounterRegistry()
        hazards = _hammer(lambda: registry.add("hits"))
        assert hazards == []
        assert registry.get("hits") == THREADS * ITERS

    def test_metrics_registry_clean_under_sanitizer(self, sanitizer):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()

        def work():
            registry.counter("requests").inc()
            registry.gauge("depth").set(3)

        assert _hammer(work) == []

    def test_ttl_cache_clean_under_sanitizer(self, sanitizer):
        from repro.serve.cache import TTLCache

        cache = TTLCache(max_entries=32, ttl=60.0)

        def work():
            cache.put("key", 1)
            cache.get("key")
            cache.purge_expired()

        assert _hammer(work) == []
