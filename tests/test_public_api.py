"""Public API conformance: exports resolve and are documented."""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = ["repro.nn", "repro.data", "repro.models", "repro.core",
               "repro.eval", "repro.bench", "repro.perf", "repro.ckpt",
               "repro.testing", "repro.obs", "repro.train"]


class TestExports:
    def test_version_present(self):
        assert repro.__version__

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_symbols_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), f"{module_name} has no __all__"
        for symbol in module.__all__:
            assert hasattr(module, symbol), f"{module_name}.{symbol} missing"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_sorted(self, module_name):
        module = importlib.import_module(module_name)
        assert list(module.__all__) == sorted(module.__all__), (
            f"{module_name}.__all__ is not sorted"
        )

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_classes_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for symbol in module.__all__:
            obj = getattr(module, symbol)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(symbol)
        assert not undocumented, (
            f"{module_name}: public items without docstrings: {undocumented}"
        )

    def test_package_docstring_mentions_paper(self):
        assert "IMCAT" in (repro.__doc__ or "")

    def test_io_helpers_exported(self):
        assert callable(repro.save_model)
        assert callable(repro.load_model)


class TestModuleDocstrings:
    @pytest.mark.parametrize(
        "module_name",
        SUBPACKAGES
        + [
            "repro.nn.tensor", "repro.nn.functional", "repro.nn.optim",
            "repro.nn.sparse", "repro.nn.layers", "repro.nn.module",
            "repro.data.dataset", "repro.data.synthetic",
            "repro.data.preprocess", "repro.data.split",
            "repro.data.sampling", "repro.data.loaders", "repro.data.stats",
            "repro.models.base", "repro.models.bprmf", "repro.models.neumf",
            "repro.models.lightgcn", "repro.models.training",
            "repro.core.config", "repro.core.intents",
            "repro.core.clustering", "repro.core.alignment",
            "repro.core.set2set", "repro.core.imcat", "repro.core.trainer",
            "repro.core.explain",
            "repro.eval.metrics", "repro.eval.evaluator",
            "repro.eval.groups", "repro.eval.significance",
            "repro.bench.harness", "repro.bench.registry",
            "repro.bench.tables", "repro.bench.hotpaths", "repro.io",
            "repro.perf.timers", "repro.perf.counters", "repro.perf.report",
            "repro.obs.spans", "repro.obs.metrics", "repro.obs.export",
            "repro.obs.profiler", "repro.obs.report",
        ],
    )
    def test_every_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert (module.__doc__ or "").strip(), f"{module_name} undocumented"
