"""Tests for the extended activation functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F

from ..helpers import assert_gradcheck


class TestSoftplus:
    def test_positive_everywhere(self, rng):
        out = F.softplus(Tensor(rng.normal(size=(20,)) * 5))
        assert np.all(out.data > 0)

    def test_matches_naive_in_safe_range(self, rng):
        x = rng.normal(size=(10,))
        np.testing.assert_allclose(
            F.softplus(Tensor(x)).data, np.log1p(np.exp(x)), atol=1e-12
        )

    def test_stable_for_extremes(self):
        out = F.softplus(Tensor(np.array([-1e4, 1e4])))
        assert np.all(np.isfinite(out.data))
        assert out.data[1] == pytest.approx(1e4)

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(6,)), requires_grad=True)
        assert_gradcheck(lambda: F.softplus(x).sum(), [x])


class TestElu:
    def test_identity_for_positive(self):
        x = Tensor(np.array([1.0, 2.0]))
        np.testing.assert_allclose(F.elu(x).data, [1.0, 2.0])

    def test_saturates_at_minus_alpha(self):
        out = F.elu(Tensor(np.array([-100.0])), alpha=1.5)
        assert out.data[0] == pytest.approx(-1.5)

    def test_continuous_at_zero(self):
        eps = 1e-8
        left = F.elu(Tensor(np.array([-eps]))).data[0]
        right = F.elu(Tensor(np.array([eps]))).data[0]
        assert abs(left - right) < 1e-6

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(6,)), requires_grad=True)
        assert_gradcheck(lambda: F.elu(x, alpha=0.7).sum(), [x])


class TestGelu:
    def test_zero_at_zero(self):
        assert F.gelu(Tensor(np.zeros(1))).data[0] == 0.0

    def test_approaches_identity_for_large_positive(self):
        out = F.gelu(Tensor(np.array([10.0])))
        assert out.data[0] == pytest.approx(10.0, abs=1e-6)

    def test_approaches_zero_for_large_negative(self):
        out = F.gelu(Tensor(np.array([-10.0])))
        assert out.data[0] == pytest.approx(0.0, abs=1e-6)

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(6,)), requires_grad=True)
        assert_gradcheck(lambda: F.gelu(x).sum(), [x])
