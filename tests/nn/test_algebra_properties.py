"""Hypothesis property tests: algebraic laws of the autograd engine.

These complement the pointwise gradchecks: the *laws* (associativity,
distributivity, linearity of the gradient) must hold for arbitrary
well-conditioned inputs, both in the forward values and in the
gradients they induce.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor


def finite_arrays(shape=(3, 4)):
    return hnp.arrays(
        np.float64, shape, elements=st.floats(-10, 10, allow_nan=False)
    )


def grad_of(expr_builder, *arrays):
    """Build the expression from fresh tensors and return their grads."""
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    expr_builder(*tensors).sum().backward()
    return [t.grad for t in tensors]


class TestForwardLaws:
    @given(finite_arrays(), finite_arrays(), finite_arrays())
    @settings(max_examples=30, deadline=None)
    def test_addition_associative(self, a, b, c):
        left = (Tensor(a) + Tensor(b)) + Tensor(c)
        right = Tensor(a) + (Tensor(b) + Tensor(c))
        np.testing.assert_allclose(left.data, right.data, atol=1e-9)

    @given(finite_arrays(), finite_arrays())
    @settings(max_examples=30, deadline=None)
    def test_addition_commutative(self, a, b):
        np.testing.assert_allclose(
            (Tensor(a) + Tensor(b)).data, (Tensor(b) + Tensor(a)).data
        )

    @given(finite_arrays(), finite_arrays(), finite_arrays())
    @settings(max_examples=30, deadline=None)
    def test_multiplication_distributes(self, a, b, c):
        left = Tensor(a) * (Tensor(b) + Tensor(c))
        right = Tensor(a) * Tensor(b) + Tensor(a) * Tensor(c)
        np.testing.assert_allclose(left.data, right.data, atol=1e-8)

    @given(finite_arrays((2, 3)), finite_arrays((3, 4)), finite_arrays((4, 2)))
    @settings(max_examples=20, deadline=None)
    def test_matmul_associative(self, a, b, c):
        left = (Tensor(a) @ Tensor(b)) @ Tensor(c)
        right = Tensor(a) @ (Tensor(b) @ Tensor(c))
        np.testing.assert_allclose(left.data, right.data, atol=1e-7)

    @given(finite_arrays())
    @settings(max_examples=30, deadline=None)
    def test_double_negation_identity(self, a):
        np.testing.assert_allclose((-(-Tensor(a))).data, a)

    @given(finite_arrays())
    @settings(max_examples=30, deadline=None)
    def test_exp_log_roundtrip(self, a):
        positive = np.abs(a) + 0.5
        np.testing.assert_allclose(
            Tensor(positive).log().exp().data, positive, rtol=1e-10
        )


class TestGradientLaws:
    @given(finite_arrays(), finite_arrays())
    @settings(max_examples=25, deadline=None)
    def test_gradient_of_sum_is_sum_of_gradients(self, a, b):
        """d/dx sum(x*y + x) == y + 1 regardless of expression grouping."""
        (ga1, gb1) = grad_of(lambda x, y: x * y + x, a, b)
        np.testing.assert_allclose(ga1, b + 1.0, atol=1e-9)
        np.testing.assert_allclose(gb1, a, atol=1e-9)

    @given(finite_arrays(), st.floats(-5, 5, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_gradient_linearity_in_scalar(self, a, scale):
        (grad_scaled,) = grad_of(lambda x: x * scale, a)
        np.testing.assert_allclose(grad_scaled, np.full_like(a, scale))

    @given(finite_arrays())
    @settings(max_examples=25, deadline=None)
    def test_identity_composition_gradient(self, a):
        """Reshape/transpose round trips leave the gradient untouched."""
        (grad,) = grad_of(lambda x: x.reshape(-1).reshape(3, 4).T.T, a)
        np.testing.assert_allclose(grad, np.ones_like(a))

    @given(finite_arrays((4,)), finite_arrays((4,)))
    @settings(max_examples=25, deadline=None)
    def test_product_rule(self, a, b):
        (ga, gb) = grad_of(lambda x, y: x * y, a, b)
        np.testing.assert_allclose(ga, b)
        np.testing.assert_allclose(gb, a)

    @given(finite_arrays((3, 3)))
    @settings(max_examples=25, deadline=None)
    def test_chain_rule_through_relu(self, a):
        (grad,) = grad_of(lambda x: (x.relu() * 2.0), a)
        expected = np.where(a > 0, 2.0, 0.0)
        np.testing.assert_allclose(grad, expected)
