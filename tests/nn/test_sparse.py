"""Tests for sparse graph operators."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn.sparse import (
    build_interaction_matrix,
    drop_edges,
    normalized_bipartite_adjacency,
    row_normalize,
    sparse_matmul,
    symmetric_normalize,
)

from ..helpers import assert_gradcheck


def _is_subset(candidate, universe) -> bool:
    """True when every non-zero of ``candidate`` is non-zero in ``universe``."""
    cand = candidate.tocoo()
    existing = set(zip(universe.tocoo().row.tolist(), universe.tocoo().col.tolist()))
    return all((r, c) in existing for r, c in zip(cand.row.tolist(), cand.col.tolist()))


class TestBuildInteractionMatrix:
    def test_shape_and_binary(self):
        mat = build_interaction_matrix(
            np.array([0, 0, 1]), np.array([1, 1, 2]), 3, 4
        )
        assert mat.shape == (3, 4)
        assert mat[0, 1] == 1.0  # duplicate collapsed
        assert mat.nnz == 2

    def test_empty(self):
        mat = build_interaction_matrix(np.array([]), np.array([]), 2, 2)
        assert mat.nnz == 0


class TestNormalization:
    def test_row_normalize_rows_sum_to_one(self):
        mat = build_interaction_matrix(
            np.array([0, 0, 1]), np.array([0, 1, 1]), 2, 2
        )
        normalized = row_normalize(mat)
        np.testing.assert_allclose(
            np.asarray(normalized.sum(axis=1)).ravel(), [1.0, 1.0]
        )

    def test_row_normalize_zero_rows_stay_zero(self):
        mat = sp.csr_matrix((2, 2))
        normalized = row_normalize(mat)
        assert normalized.nnz == 0

    def test_symmetric_normalize_spectrum_bounded(self):
        rng = np.random.default_rng(0)
        raw = sp.random(10, 10, density=0.4, random_state=1)
        adj = raw + raw.T  # symmetric
        normalized = symmetric_normalize(adj.tocsr())
        eigenvalues = np.linalg.eigvalsh(normalized.toarray())
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_bipartite_adjacency_block_structure(self):
        interactions = build_interaction_matrix(
            np.array([0, 1]), np.array([0, 1]), 2, 2
        )
        adj = normalized_bipartite_adjacency(interactions).toarray()
        # User-user and item-item blocks are zero.
        np.testing.assert_allclose(adj[:2, :2], 0.0)
        np.testing.assert_allclose(adj[2:, 2:], 0.0)
        # Symmetric overall.
        np.testing.assert_allclose(adj, adj.T)

    def test_bipartite_single_edge_weight(self):
        # A single user-item edge with degree 1 on each side gets weight 1.
        interactions = build_interaction_matrix(
            np.array([0]), np.array([0]), 1, 1
        )
        adj = normalized_bipartite_adjacency(interactions).toarray()
        assert adj[0, 1] == pytest.approx(1.0)


class TestDropEdges:
    def test_zero_ratio_keeps_all(self, rng):
        mat = sp.random(5, 5, density=0.5, random_state=0, format="csr")
        assert drop_edges(mat, 0.0, rng).nnz == mat.nnz

    def test_ratio_drops_roughly_expected(self):
        rng = np.random.default_rng(0)
        mat = sp.random(100, 100, density=0.3, random_state=0, format="csr")
        dropped = drop_edges(mat, 0.5, rng)
        assert 0.35 * mat.nnz < dropped.nnz < 0.65 * mat.nnz

    def test_invalid_ratio(self, rng):
        mat = sp.random(3, 3, density=0.5, random_state=0, format="csr")
        with pytest.raises(ValueError):
            drop_edges(mat, 1.0, rng)

    @given(st.floats(0.0, 0.9))
    @settings(max_examples=15, deadline=None)
    def test_dropped_is_subset(self, ratio):
        rng = np.random.default_rng(1)
        mat = sp.random(20, 20, density=0.3, random_state=2, format="csr")
        dropped = drop_edges(mat, ratio, rng)
        # Every surviving edge exists in the original.
        assert _is_subset(dropped, mat)


class TestSparseMatmul:
    def test_matches_dense(self, rng):
        adj = sp.random(4, 6, density=0.5, random_state=0, format="csr")
        x = Tensor(rng.normal(size=(6, 3)))
        np.testing.assert_allclose(
            sparse_matmul(adj, x).data, adj.toarray() @ x.data
        )

    def test_gradcheck(self, rng):
        adj = sp.random(4, 5, density=0.6, random_state=1, format="csr")
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        assert_gradcheck(lambda: (sparse_matmul(adj, x) ** 2).sum(), [x])

    def test_chained_propagation_gradcheck(self, rng):
        adj = sp.random(5, 5, density=0.5, random_state=2, format="csr")
        x = Tensor(rng.normal(size=(5, 2)), requires_grad=True)
        assert_gradcheck(
            lambda: (sparse_matmul(adj, sparse_matmul(adj, x)) ** 2).sum(), [x]
        )
