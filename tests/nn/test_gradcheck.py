"""Finite-difference gradcheck pinning of `repro.nn.functional` ops."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import GradcheckError, Tensor, gradcheck
from repro.nn import functional as F
from repro.nn.tensor import as_tensor


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestFunctionalOps:
    def test_softmax(self, rng):
        x = Tensor(rng.normal(size=(4, 5)))
        assert gradcheck(lambda t: F.softmax(t, axis=1), [x])

    def test_log(self, rng):
        x = Tensor(rng.uniform(0.5, 2.0, size=(3, 4)))
        assert gradcheck(lambda t: t.log(), [x])

    def test_leaky_relu(self, rng):
        # Keep inputs away from the kink at 0 where the subgradient and
        # the symmetric difference legitimately disagree.
        data = rng.normal(size=(4, 4))
        data[np.abs(data) < 0.1] = 0.5
        assert gradcheck(lambda t: t.leaky_relu(0.2), [Tensor(data)])

    def test_log_softmax(self, rng):
        x = Tensor(rng.normal(size=(3, 6)))
        assert gradcheck(lambda t: F.log_softmax(t, axis=1), [x])

    def test_log_sigmoid(self, rng):
        x = Tensor(rng.normal(size=(8,)))
        assert gradcheck(F.log_sigmoid, [x])

    def test_l2_normalize(self, rng):
        x = Tensor(rng.normal(size=(4, 6)) + 0.5)
        assert gradcheck(lambda t: F.l2_normalize(t, axis=1), [x])

    def test_info_nce(self, rng):
        q = Tensor(rng.normal(size=(5, 8)))
        k = Tensor(rng.normal(size=(5, 8)))
        assert gradcheck(lambda a, b: F.info_nce(a, b, temperature=0.7), [q, k])

    def test_info_nce_with_mask_and_weights(self, rng):
        q = Tensor(rng.normal(size=(4, 6)))
        k = Tensor(rng.normal(size=(4, 6)))
        mask = rng.random((4, 4)) > 0.5
        weights = rng.uniform(0.5, 1.5, size=4)
        assert gradcheck(
            lambda a, b: F.info_nce(
                a, b, temperature=1.3, row_weights=weights, positive_mask=mask
            ),
            [q, k],
        )

    def test_bpr_loss(self, rng):
        pos = Tensor(rng.normal(size=(6,)))
        neg = Tensor(rng.normal(size=(6,)))
        assert gradcheck(F.bpr_loss, [pos, neg])


class TestHarness:
    def test_detects_wrong_gradient(self):
        def bad_square(x):
            x = as_tensor(x)
            out_data = x.data**2

            def backward(g):
                if x.requires_grad:
                    x._accumulate(g * 3.0 * x.data)  # wrong: should be 2x

            return Tensor._make(out_data, (x,), backward)

        x = Tensor([1.0, 2.0, 3.0])
        with pytest.raises(GradcheckError, match="gradient mismatch"):
            gradcheck(bad_square, [x])
        assert gradcheck(bad_square, [x], raise_on_failure=False) is False

    def test_inputs_not_mutated(self):
        data = np.array([1.0, 2.0])
        x = Tensor(data.copy())
        gradcheck(lambda t: (t * t).sum(), [x])
        np.testing.assert_array_equal(x.data, data)

    def test_disconnected_output_raises(self):
        x = Tensor([1.0])
        with pytest.raises(GradcheckError, match="does not require grad"):
            gradcheck(lambda t: Tensor([1.0]), [x])

    def test_non_tensor_output_raises(self):
        x = Tensor([1.0])
        with pytest.raises(TypeError, match="must return a Tensor"):
            gradcheck(lambda t: np.ones(3), [x])

    def test_info_nce_rejects_bad_temperature(self):
        q = Tensor(np.ones((2, 3)))
        with pytest.raises(ValueError, match="temperature"):
            F.info_nce(q, q, temperature=0.0)
