"""Tests for learning-rate schedulers and gradient clipping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    SGD,
    CosineAnnealing,
    Parameter,
    StepDecay,
    Tensor,
    WarmupLinear,
    clip_grad_norm,
)


def make_optimizer(lr=0.1):
    return SGD([Parameter(np.ones(2))], lr=lr)


class TestStepDecay:
    def test_halves_at_boundaries(self):
        scheduler = StepDecay(make_optimizer(0.1), step_size=2, gamma=0.5)
        lrs = [scheduler.step() for _ in range(5)]
        np.testing.assert_allclose(lrs, [0.1, 0.05, 0.05, 0.025, 0.025])

    def test_updates_optimizer(self):
        opt = make_optimizer(0.1)
        scheduler = StepDecay(opt, step_size=1, gamma=0.1)
        scheduler.step()
        assert opt.lr == pytest.approx(0.01)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StepDecay(make_optimizer(), step_size=0)
        with pytest.raises(ValueError):
            StepDecay(make_optimizer(), step_size=1, gamma=0.0)


class TestCosineAnnealing:
    def test_endpoints(self):
        scheduler = CosineAnnealing(make_optimizer(1.0), total_epochs=10, min_lr=0.1)
        lrs = [scheduler.step() for _ in range(10)]
        assert lrs[0] < 1.0
        assert lrs[-1] == pytest.approx(0.1)

    def test_monotone_decreasing(self):
        scheduler = CosineAnnealing(make_optimizer(1.0), total_epochs=20)
        lrs = [scheduler.step() for _ in range(20)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_clamps_past_horizon(self):
        scheduler = CosineAnnealing(make_optimizer(1.0), total_epochs=3, min_lr=0.2)
        for _ in range(10):
            lr = scheduler.step()
        assert lr == pytest.approx(0.2)

    def test_invalid_total(self):
        with pytest.raises(ValueError):
            CosineAnnealing(make_optimizer(), total_epochs=0)


class TestWarmupLinear:
    def test_warmup_rises_then_decays(self):
        scheduler = WarmupLinear(make_optimizer(1.0), warmup_epochs=2, total_epochs=6)
        lrs = [scheduler.step() for _ in range(6)]
        assert lrs[0] == pytest.approx(0.5)
        assert lrs[1] == pytest.approx(1.0)
        assert lrs[-1] == pytest.approx(0.0)
        assert max(lrs) == lrs[1]

    def test_invalid_ordering(self):
        with pytest.raises(ValueError):
            WarmupLinear(make_optimizer(), warmup_epochs=5, total_epochs=5)


class TestClipGradNorm:
    def test_noop_below_threshold(self):
        param = Parameter(np.zeros(3))
        param.grad = np.array([0.1, 0.0, 0.0])
        norm = clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(0.1)
        np.testing.assert_allclose(param.grad, [0.1, 0.0, 0.0])

    def test_scales_above_threshold(self):
        param = Parameter(np.zeros(2))
        param.grad = np.array([3.0, 4.0])  # norm 5
        norm = clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, abs=1e-6)

    def test_global_norm_across_parameters(self):
        a = Parameter(np.zeros(1))
        b = Parameter(np.zeros(1))
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        clip_grad_norm([a, b], max_norm=1.0)
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_skips_missing_grads(self):
        param = Parameter(np.zeros(2))
        assert clip_grad_norm([param], max_norm=1.0) == 0.0

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)
