"""Tests for the graph augmentation operators (SGL's ED / ND / RW)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import drop_edges, drop_nodes, random_walk_edges


def make_graph(n=30, density=0.3, seed=0):
    mat = sp.random(n, n, density=density, random_state=seed, format="csr")
    mat.data[:] = 1.0
    return mat


def _is_subset(candidate, universe) -> bool:
    """True when every non-zero of ``candidate`` is non-zero in ``universe``."""
    cand = candidate.tocoo()
    existing = set(zip(universe.tocoo().row.tolist(), universe.tocoo().col.tolist()))
    return all((r, c) in existing for r, c in zip(cand.row.tolist(), cand.col.tolist()))


class TestDropNodes:
    def test_zero_ratio_keeps_all(self):
        rng = np.random.default_rng(0)
        graph = make_graph()
        assert drop_nodes(graph, 0.0, rng).nnz == graph.nnz

    def test_dropped_node_loses_all_edges(self):
        rng = np.random.default_rng(0)
        graph = make_graph(n=50)
        dropped = drop_nodes(graph, 0.4, rng)
        # Each node is either fully present or fully absent as a row+col.
        row_deg = np.asarray(dropped.sum(axis=1)).ravel()
        col_deg = np.asarray(dropped.sum(axis=0)).ravel()
        orig_row = np.asarray(graph.sum(axis=1)).ravel()
        for node in range(50):
            if row_deg[node] == 0 and col_deg[node] == 0:
                continue  # either dropped or isolated — fine
            # Surviving nodes keep only edges to surviving partners, so
            # their degree can shrink but not grow.
            assert row_deg[node] <= orig_row[node]

    def test_subset_of_original(self):
        rng = np.random.default_rng(1)
        graph = make_graph()
        dropped = drop_nodes(graph, 0.3, rng)
        assert _is_subset(dropped, graph)

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            drop_nodes(make_graph(), 1.0, np.random.default_rng(0))

    def test_rectangular_matrix(self):
        rng = np.random.default_rng(0)
        mat = sp.random(10, 20, density=0.3, random_state=0, format="csr")
        dropped = drop_nodes(mat, 0.3, rng)
        assert dropped.shape == (10, 20)


class TestRandomWalk:
    def test_one_matrix_per_layer(self):
        rng = np.random.default_rng(0)
        layers = random_walk_edges(make_graph(), 0.2, rng, num_layers=3)
        assert len(layers) == 3

    def test_layers_are_independent_samples(self):
        rng = np.random.default_rng(0)
        layers = random_walk_edges(make_graph(), 0.4, rng, num_layers=2)
        assert (layers[0] != layers[1]).nnz > 0

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            random_walk_edges(make_graph(), 0.2, np.random.default_rng(0), 0)

    def test_each_layer_subset_of_original(self):
        rng = np.random.default_rng(2)
        graph = make_graph()
        for layer in random_walk_edges(graph, 0.3, rng, 3):
            assert _is_subset(layer, graph)
