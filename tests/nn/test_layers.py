"""Tests for standard layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Dropout,
    Embedding,
    LeakyReLU,
    Linear,
    ProjectionHead,
    ReLU,
    Sequential,
    Sigmoid,
    Tensor,
)

from ..helpers import assert_gradcheck


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(4, 3, rng)
        assert layer(Tensor(np.ones((5, 4)))).shape == (5, 3)

    def test_no_bias_option(self, rng):
        layer = Linear(4, 3, rng, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_matches_manual_affine(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_gradcheck(self, rng):
        layer = Linear(3, 2, rng)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        assert_gradcheck(
            lambda: (layer(x) ** 2).sum(), [x, layer.weight, layer.bias]
        )


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 4, rng)
        assert emb(np.array([1, 5, 5])).shape == (3, 4)

    def test_all_returns_parameter(self, rng):
        emb = Embedding(10, 4, rng)
        assert emb.all() is emb.weight

    def test_training_updates_only_touched_rows(self, rng):
        emb = Embedding(5, 2, rng)
        out = emb(np.array([1, 3]))
        out.sum().backward()
        touched = np.abs(emb.weight.grad).sum(axis=1) > 0
        np.testing.assert_array_equal(touched, [False, True, False, True, False])


class TestActivationModules:
    @pytest.mark.parametrize("cls", [ReLU, Sigmoid, LeakyReLU])
    def test_activation_shapes(self, cls, rng):
        layer = cls()
        x = Tensor(rng.normal(size=(3, 3)))
        assert layer(x).shape == (3, 3)

    def test_dropout_module_eval_identity(self, rng):
        drop = Dropout(0.9, rng)
        drop.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(drop(x).data, 1.0)

    def test_dropout_invalid_p(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.5, rng)


class TestMLP:
    def test_requires_layers(self, rng):
        with pytest.raises(ValueError):
            MLP(4, [], rng)

    def test_output_size(self, rng):
        mlp = MLP(4, [8, 2], rng)
        assert mlp(Tensor(np.ones((3, 4)))).shape == (3, 2)
        assert mlp.out_features == 2

    def test_final_activation_flag(self, rng):
        mlp = MLP(4, [3], rng, final_activation=True)
        out = mlp(Tensor(np.full((2, 4), -10.0)))
        assert np.all(out.data >= 0)  # ReLU applied at the end

    def test_gradcheck(self, rng):
        mlp = MLP(3, [4, 2], rng)
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        params = list(mlp.parameters())
        assert_gradcheck(lambda: (mlp(x) ** 2).sum(), [x] + params)

    def test_custom_activation(self, rng):
        mlp = MLP(3, [3, 3], rng, activation=lambda t: t.tanh())
        out = mlp(Tensor(np.ones((2, 3))))
        assert out.shape == (2, 3)


class TestProjectionHead:
    def test_preserves_dimension(self, rng):
        head = ProjectionHead(8, rng)
        assert head(Tensor(np.ones((3, 8)))).shape == (3, 8)

    def test_second_layer_has_no_bias(self, rng):
        head = ProjectionHead(8, rng)
        assert head.fc2.bias is None

    def test_gradcheck(self, rng):
        head = ProjectionHead(4, rng)
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert_gradcheck(
            lambda: (head(x) ** 2).sum(), [x] + list(head.parameters())
        )


class TestSequential:
    def test_applies_in_order(self, rng):
        seq = Sequential(Linear(2, 3, rng), ReLU(), Linear(3, 1, rng))
        assert seq(Tensor(np.ones((4, 2)))).shape == (4, 1)

    def test_iterable(self, rng):
        seq = Sequential(Linear(2, 2, rng), ReLU())
        assert len(list(seq)) == 2
