"""Unit tests for the autograd Tensor: ops, broadcasting, backward."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, as_tensor, concat, no_grad, ones, stack, where, zeros
from repro.nn.tensor import unbroadcast

from ..helpers import assert_gradcheck


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_int_array_promoted_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype == np.float64

    def test_float32_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float32))
        assert t.dtype == np.float32

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_zeros_ones_factories(self):
        assert zeros(2, 3).shape == (2, 3)
        assert ones((4,)).data.sum() == 4.0

    def test_detach_cuts_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad

    def test_item_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_len_and_repr(self):
        t = Tensor([1.0, 2.0])
        assert len(t) == 2
        assert "Tensor" in repr(t)

    def test_as_tensor_identity(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t


class TestArithmetic:
    def test_add_forward(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_scalar_radd(self):
        out = 1.0 + Tensor([1.0])
        np.testing.assert_allclose(out.data, [2.0])

    def test_sub_and_rsub(self):
        np.testing.assert_allclose((Tensor([3.0]) - 1.0).data, [2.0])
        np.testing.assert_allclose((5.0 - Tensor([3.0])).data, [2.0])

    def test_mul_div(self):
        np.testing.assert_allclose((Tensor([4.0]) * 2).data, [8.0])
        np.testing.assert_allclose((Tensor([4.0]) / 2).data, [2.0])
        np.testing.assert_allclose((8.0 / Tensor([4.0])).data, [2.0])

    def test_pow_scalar_only(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul_shapes(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.ones((3, 4)))
        assert (a @ b).shape == (2, 4)

    def test_add_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert_gradcheck(lambda: (a + b).sum(), [a, b])

    def test_broadcast_add_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        assert_gradcheck(lambda: ((a + b) ** 2).sum(), [a, b])

    def test_broadcast_mul_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(3, 1)), requires_grad=True)
        b = Tensor(rng.normal(size=(1, 4)), requires_grad=True)
        assert_gradcheck(lambda: (a * b).sum(), [a, b])

    def test_div_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(3,)) + 3.0, requires_grad=True)
        b = Tensor(rng.normal(size=(3,)) + 3.0, requires_grad=True)
        assert_gradcheck(lambda: (a / b).sum(), [a, b])

    def test_matmul_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert_gradcheck(lambda: (a @ b).sum(), [a, b])

    def test_matvec_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        v = Tensor(rng.normal(size=(3,)), requires_grad=True)
        assert_gradcheck(lambda: (a @ v).sum(), [a, v])

    def test_pow_gradcheck(self, rng):
        a = Tensor(np.abs(rng.normal(size=(3,))) + 0.5, requires_grad=True)
        assert_gradcheck(lambda: (a**3).sum(), [a])

    def test_neg_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        assert_gradcheck(lambda: (-a).sum(), [a])


class TestShapeOps:
    def test_reshape_roundtrip(self, rng):
        a = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        assert a.reshape(3, 4).shape == (3, 4)
        assert a.reshape((12,)).shape == (12,)

    def test_reshape_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        assert_gradcheck(lambda: (a.reshape(3, 4) ** 2).sum(), [a])

    def test_transpose_default_reverses(self):
        a = Tensor(np.zeros((2, 3, 4)))
        assert a.T.shape == (4, 3, 2)

    def test_transpose_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        assert_gradcheck(lambda: (a.T @ a).sum(), [a])

    def test_getitem_rows(self, rng):
        a = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        idx = np.array([0, 2, 2, 4])
        assert_gradcheck(lambda: (a[idx] ** 2).sum(), [a])

    def test_getitem_slice_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        assert_gradcheck(lambda: (a[:, 1:4] ** 2).sum(), [a])

    def test_concat_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        assert_gradcheck(lambda: (concat([a, b], axis=0) ** 2).sum(), [a, b])

    def test_concat_axis1(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        assert_gradcheck(lambda: (concat([a, b], axis=1) ** 2).sum(), [a, b])

    def test_stack_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        assert_gradcheck(lambda: (stack([a, b]) ** 2).sum(), [a, b])

    def test_where_gradcheck(self, rng):
        cond = np.array([True, False, True])
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        assert_gradcheck(lambda: (where(cond, a, b) ** 2).sum(), [a, b])


class TestReductions:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.ones((2, 3)))
        assert a.sum(axis=0).shape == (3,)
        assert a.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_sum_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert_gradcheck(lambda: (a.sum(axis=1) ** 2).sum(), [a])

    def test_mean_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert_gradcheck(lambda: (a.mean(axis=0) ** 2).sum(), [a])

    def test_mean_matches_numpy(self, rng):
        data = rng.normal(size=(3, 4))
        np.testing.assert_allclose(
            Tensor(data).mean(axis=1).data, data.mean(axis=1)
        )

    def test_max_gradcheck_unique(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert_gradcheck(lambda: a.max(axis=1).sum(), [a])

    def test_max_ties_split_gradient(self):
        a = Tensor(np.array([[1.0, 1.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.5, 0.5]])


class TestNonlinearities:
    @pytest.mark.parametrize(
        "op", ["exp", "log", "sqrt", "sigmoid", "tanh", "relu", "abs"]
    )
    def test_elementwise_gradcheck(self, op, rng):
        base = np.abs(rng.normal(size=(4,))) + 0.5  # positive for log/sqrt
        a = Tensor(base, requires_grad=True)
        assert_gradcheck(lambda: getattr(a, op)().sum(), [a])

    def test_leaky_relu_negative_slope(self):
        a = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        out = a.leaky_relu(0.1)
        np.testing.assert_allclose(out.data, [-0.2, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0.1, 1.0])

    def test_sigmoid_extreme_values_stable(self):
        out = Tensor(np.array([-1000.0, 1000.0])).sigmoid()
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-12)

    def test_clip_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(6,)) * 2, requires_grad=True)
        assert_gradcheck(lambda: a.clip(-1.0, 1.0).sum(), [a])


class TestBackward:
    def test_backward_requires_scalar(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError, match="scalar"):
            a.backward()

    def test_backward_explicit_seed_shape_checked(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError, match="shape"):
            a.backward(np.ones(4))

    def test_gradient_accumulates_across_calls(self):
        a = Tensor(np.ones(2), requires_grad=True)
        (a * 2).sum().backward()
        (a * 2).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0, 4.0])

    def test_zero_grad(self):
        a = Tensor(np.ones(2), requires_grad=True)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_diamond_graph_gradients(self):
        # f = (a*2) + (a*3): both paths must accumulate.
        a = Tensor(np.array([1.0]), requires_grad=True)
        ((a * 2) + (a * 3)).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0])

    def test_reused_tensor_in_product(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        (a * a).sum().backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_deep_chain_no_recursion_error(self):
        a = Tensor(np.ones(1), requires_grad=True)
        out = a
        for _ in range(3000):
            out = out + 1.0
        out.sum().backward()  # iterative topo sort: must not overflow
        np.testing.assert_allclose(a.grad, [1.0])

    def test_no_grad_blocks_tape(self):
        a = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad
        assert out._parents == ()

    def test_no_grad_restores_state(self):
        with no_grad():
            pass
        a = Tensor(np.ones(1), requires_grad=True)
        assert (a * 2).requires_grad


class TestUnbroadcast:
    @given(
        st.sampled_from([(3, 4), (1, 4), (3, 1), (1, 1), (4,), (1,), ()])
    )
    @settings(max_examples=20, deadline=None)
    def test_unbroadcast_inverts_broadcast(self, shape):
        target = np.zeros(shape)
        grad = np.ones(np.broadcast_shapes(shape, (3, 4)))
        reduced = unbroadcast(grad, shape)
        assert reduced.shape == shape

    def test_unbroadcast_sums_expanded_axes(self):
        grad = np.ones((5, 3))
        np.testing.assert_allclose(unbroadcast(grad, (3,)), [5.0, 5.0, 5.0])
