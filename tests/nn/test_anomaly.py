"""Numeric sanitizer (`detect_anomaly`) and grad-mode context tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    NumericAnomalyError,
    Tensor,
    detect_anomaly,
    enable_grad,
    is_anomaly_enabled,
    is_grad_enabled,
    no_grad,
    set_grad_enabled,
)
from repro.nn import functional as F

# These tests deliberately produce NaN/Inf to exercise the sanitizer;
# NumPy's own RuntimeWarnings about them are expected noise.
pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


class TestGradModeContexts:
    def test_no_grad_disables_tape(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2.0
        assert is_grad_enabled()
        assert not y.requires_grad

    def test_no_grad_is_reentrant_with_one_instance(self):
        ctx = no_grad()
        with ctx:
            with ctx:
                assert not is_grad_enabled()
            # Inner exit must restore the *inner* previous state
            # (False), not clobber it with the outer one.
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_enable_grad_inside_no_grad(self):
        with no_grad():
            with enable_grad():
                assert is_grad_enabled()
            assert not is_grad_enabled()

    def test_set_grad_enabled_modes(self):
        with set_grad_enabled(False):
            assert not is_grad_enabled()
            with set_grad_enabled(True):
                assert is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_as_decorator(self):
        @no_grad()
        def score(x):
            assert not is_grad_enabled()
            return x * 3.0

        x = Tensor([1.0], requires_grad=True)
        out = score(x)
        assert not out.requires_grad
        assert is_grad_enabled()

    def test_decorated_function_recursion_safe(self):
        @no_grad()
        def recurse(x, depth):
            assert not is_grad_enabled()
            if depth == 0:
                return x
            return recurse(x * 1.0, depth - 1)

        recurse(Tensor([1.0], requires_grad=True), 3)
        assert is_grad_enabled()


class TestForwardAnomaly:
    def test_log_zero_names_op(self):
        x = Tensor([0.0, 1.0], requires_grad=True)
        with detect_anomaly():
            with pytest.raises(NumericAnomalyError, match="Tensor.log"):
                x.log()

    def test_divide_by_zero_names_op(self):
        x = Tensor([1.0], requires_grad=True)
        with detect_anomaly():
            with pytest.raises(NumericAnomalyError, match="__truediv__"):
                x / Tensor([0.0])

    def test_error_reports_parent_shapes(self):
        x = Tensor(np.zeros((2, 3)), requires_grad=True)
        with detect_anomaly():
            with pytest.raises(NumericAnomalyError, match=r"\(2, 3\)"):
                x.log()

    def test_functional_ops_are_covered(self):
        # A leaf carrying Inf is legal (leaves are unchecked); the first
        # *op* producing a non-finite value is log_softmax itself.
        x = Tensor([[np.inf, 1.0]], requires_grad=True)
        with detect_anomaly():
            with pytest.raises(NumericAnomalyError, match="log_softmax"):
                F.log_softmax(x)

    def test_no_raise_when_disabled(self):
        x = Tensor([0.0], requires_grad=True)
        out = x.log()
        assert np.isneginf(out.data).all()

    def test_enabled_flag_false_is_noop(self):
        x = Tensor([0.0], requires_grad=True)
        with detect_anomaly(enabled=False):
            assert not is_anomaly_enabled()
            x.log()

    def test_reentrant(self):
        ctx = detect_anomaly()
        with ctx:
            with ctx:
                assert is_anomaly_enabled()
            assert is_anomaly_enabled()
        assert not is_anomaly_enabled()


class TestBackwardAnomaly:
    def test_pow_at_zero_flags_backward(self):
        # Forward sqrt-of-zero is finite; the 0.5 * x**-0.5 backward
        # divides by zero — the sanitizer must name the pow op.
        x = Tensor([0.0, 4.0], requires_grad=True)
        with detect_anomaly():
            out = (x**0.5).sum()
            with pytest.raises(NumericAnomalyError, match="__pow__"):
                out.backward()

    def test_clean_backward_passes(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with detect_anomaly():
            loss = F.softmax(x.log()).sum()
            loss.backward()
        assert np.isfinite(x.grad).all()


class TestTrainerIntegration:
    def _fit(self, small_dataset, small_split, poison):
        from repro.core import IMCAT, IMCATConfig, IMCATTrainConfig, IMCATTrainer
        from repro.models import BPRMF

        rng = np.random.default_rng(0)
        backbone = BPRMF(small_dataset.num_users, small_dataset.num_items, 16, rng)
        model = IMCAT(
            backbone,
            small_dataset,
            small_split.train,
            IMCATConfig(num_intents=4, align_batch_size=32),
            rng=rng,
        )
        if poison:
            # Inject Inf into the backbone user embedding: the first
            # forward op touching it must be named by the sanitizer.
            next(iter(backbone.parameters())).data[:] = np.inf
        trainer = IMCATTrainer(
            model,
            small_split,
            IMCATTrainConfig(
                epochs=1, batch_size=128, eval_every=1, detect_anomaly=True
            ),
        )
        return trainer.fit()

    def test_anomaly_mode_pinpoints_injected_inf(self, small_dataset, small_split):
        with pytest.raises(NumericAnomalyError, match="forward output of"):
            self._fit(small_dataset, small_split, poison=True)
        # The context must be popped even when fit raises.
        assert not is_anomaly_enabled()

    def test_clean_run_completes_under_anomaly_mode(
        self, small_dataset, small_split
    ):
        result = self._fit(small_dataset, small_split, poison=False)
        assert result.epochs_run == 1
