"""Tests for the Module/Parameter system."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, Sequential, Tensor


class Composite(Module):
    def __init__(self, rng):
        super().__init__()
        self.weight = Parameter(np.ones((2, 2)))
        self.inner = Linear(2, 3, rng)

    def forward(self, x):
        return self.inner(x @ self.weight)


class TestParameter:
    def test_requires_grad_by_default(self):
        assert Parameter(np.ones(3)).requires_grad

    def test_is_tensor(self):
        assert isinstance(Parameter(np.ones(1)), Tensor)


class TestModuleTraversal:
    def test_named_parameters_qualified(self, rng):
        m = Composite(rng)
        names = dict(m.named_parameters())
        assert set(names) == {"weight", "inner.weight", "inner.bias"}

    def test_parameters_count(self, rng):
        m = Composite(rng)
        assert m.num_parameters() == 4 + 6 + 3

    def test_modules_iterates_recursively(self, rng):
        m = Composite(rng)
        assert len(list(m.modules())) == 2

    def test_sequential_registers_children(self, rng):
        seq = Sequential(Linear(2, 3, rng), Linear(3, 1, rng))
        assert len(list(seq.parameters())) == 4
        assert len(seq) == 2


class TestModuleState:
    def test_zero_grad_clears_all(self, rng):
        m = Composite(rng)
        out = m(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert any(p.grad is not None for p in m.parameters())
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())

    def test_train_eval_mode_recursive(self, rng):
        m = Composite(rng)
        m.eval()
        assert not m.training
        assert not m.inner.training
        m.train()
        assert m.inner.training

    def test_state_dict_roundtrip(self, rng):
        m1 = Composite(rng)
        m2 = Composite(np.random.default_rng(99))
        m2.load_state_dict(m1.state_dict())
        out1 = m1(Tensor(np.ones((1, 2)))).data
        out2 = m2(Tensor(np.ones((1, 2)))).data
        np.testing.assert_allclose(out1, out2)

    def test_state_dict_is_a_copy(self, rng):
        m = Composite(rng)
        state = m.state_dict()
        state["weight"][...] = 0.0
        assert m.weight.data.sum() == 4.0

    def test_load_state_dict_rejects_missing_keys(self, rng):
        m = Composite(rng)
        state = m.state_dict()
        del state["weight"]
        with pytest.raises(KeyError, match="missing"):
            m.load_state_dict(state)

    def test_load_state_dict_rejects_unexpected_keys(self, rng):
        m = Composite(rng)
        state = m.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            m.load_state_dict(state)

    def test_load_state_dict_rejects_shape_mismatch(self, rng):
        m = Composite(rng)
        state = m.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError, match="shape"):
            m.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)
