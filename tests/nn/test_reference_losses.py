"""Cross-checks of the loss kernels against independent references.

The InfoNCE and BPR implementations drive every experiment; these tests
recompute them with scipy/naive NumPy from the definitions in the paper
and require exact agreement.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.special import logsumexp as scipy_logsumexp

from repro.nn import Tensor
from repro.nn import functional as F


def reference_info_nce(q, k, tau, row_weights=None, positive_mask=None):
    """Direct transcription of Eq. 12 / Eq. 17 with scipy logsumexp."""
    logits = (q @ k.T) / tau
    n = len(q)
    if positive_mask is None:
        positive_mask = np.eye(n, dtype=bool)
    else:
        positive_mask = positive_mask | np.eye(n, dtype=bool)
    if row_weights is None:
        row_weights = np.ones(n)
    total = 0.0
    for j in range(n):
        denom = scipy_logsumexp(logits[j])
        positives = np.where(positive_mask[j])[0]
        log_probs = [logits[j, p] - denom for p in positives]
        total -= row_weights[j] * np.mean(log_probs)
    return total


class TestInfoNCEReference:
    @pytest.mark.parametrize("tau", [0.1, 0.5, 1.0])
    def test_matches_identity_positives(self, tau, rng):
        q = rng.normal(size=(6, 5))
        k = rng.normal(size=(6, 5))
        ours = F.info_nce(Tensor(q), Tensor(k), tau).item()
        ref = reference_info_nce(q, k, tau)
        assert ours == pytest.approx(ref, rel=1e-10)

    def test_matches_with_weights_and_mask(self, rng):
        q = rng.normal(size=(5, 4))
        k = rng.normal(size=(5, 4))
        weights = rng.random(5)
        mask = rng.random((5, 5)) > 0.6
        ours = F.info_nce(
            Tensor(q), Tensor(k), 0.7, row_weights=weights, positive_mask=mask
        ).item()
        ref = reference_info_nce(q, k, 0.7, weights, mask)
        assert ours == pytest.approx(ref, rel=1e-10)


class TestBPRReference:
    def test_matches_naive_definition(self, rng):
        pos = rng.normal(size=(20,))
        neg = rng.normal(size=(20,))
        ours = F.bpr_loss(Tensor(pos), Tensor(neg)).item()
        # Eq. 1: -log sigmoid(pos - neg), averaged over the batch.
        ref = float(np.mean(-np.log(1.0 / (1.0 + np.exp(-(pos - neg))))))
        assert ours == pytest.approx(ref, rel=1e-12)


class TestInputImmutability:
    """Ops must never mutate their argument buffers."""

    @pytest.mark.parametrize(
        "op",
        [
            lambda t: F.softmax(t),
            lambda t: F.l2_normalize(t),
            lambda t: t.relu(),
            lambda t: t.sigmoid(),
            lambda t: F.info_nce(t, t, 1.0),
            lambda t: t + t,
            lambda t: t * 3.0,
        ],
    )
    def test_inputs_unchanged(self, op, rng):
        data = rng.normal(size=(4, 4))
        tensor = Tensor(data.copy(), requires_grad=True)
        result = op(tensor)
        result.sum().backward()
        np.testing.assert_array_equal(tensor.data, data)
