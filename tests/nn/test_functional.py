"""Unit + property tests for repro.nn.functional."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor
from repro.nn import functional as F

from ..helpers import assert_gradcheck


def finite_matrix(rows=st.integers(2, 5), cols=st.integers(2, 5)):
    return rows.flatmap(
        lambda r: cols.flatmap(
            lambda c: hnp.arrays(
                np.float64,
                (r, c),
                elements=st.floats(-5, 5, allow_nan=False),
            )
        )
    )


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(4, 7))))
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(4))

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(3, 5))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_extreme_values_stable(self):
        out = F.softmax(Tensor(np.array([[1000.0, -1000.0]])))
        assert np.all(np.isfinite(out.data))

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        w = rng.normal(size=(3, 4))
        assert_gradcheck(lambda: (F.softmax(x) * Tensor(w)).sum(), [x])

    @given(finite_matrix())
    @settings(max_examples=25, deadline=None)
    def test_probabilities_property(self, data):
        out = F.softmax(Tensor(data)).data
        assert np.all(out >= 0)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-9)


class TestLogSoftmax:
    def test_matches_log_of_softmax(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(
            F.log_softmax(Tensor(x)).data,
            np.log(F.softmax(Tensor(x)).data),
            atol=1e-12,
        )

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        w = rng.normal(size=(3, 4))
        assert_gradcheck(lambda: (F.log_softmax(x) * Tensor(w)).sum(), [x])

    def test_stable_for_large_inputs(self):
        out = F.log_softmax(Tensor(np.array([[1e4, 0.0]])))
        assert np.all(np.isfinite(out.data))


class TestLogSumExp:
    def test_matches_numpy(self, rng):
        x = rng.normal(size=(3, 5))
        from scipy.special import logsumexp as scipy_lse

        np.testing.assert_allclose(
            F.logsumexp(Tensor(x), axis=1).data, scipy_lse(x, axis=1)
        )

    def test_keepdims(self, rng):
        out = F.logsumexp(Tensor(rng.normal(size=(3, 5))), axis=1, keepdims=True)
        assert out.shape == (3, 1)

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert_gradcheck(lambda: F.logsumexp(x, axis=1).sum(), [x])


class TestLogSigmoid:
    def test_matches_naive_in_safe_range(self, rng):
        x = rng.normal(size=(10,))
        np.testing.assert_allclose(
            F.log_sigmoid(Tensor(x)).data,
            np.log(1.0 / (1.0 + np.exp(-x))),
            atol=1e-12,
        )

    def test_stable_for_extreme_inputs(self):
        out = F.log_sigmoid(Tensor(np.array([-1e4, 1e4])))
        assert np.all(np.isfinite(out.data))
        assert out.data[0] == pytest.approx(-1e4)
        assert out.data[1] == pytest.approx(0.0)

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(6,)), requires_grad=True)
        assert_gradcheck(lambda: F.log_sigmoid(x).sum(), [x])

    def test_always_negative(self, rng):
        out = F.log_sigmoid(Tensor(rng.normal(size=(50,)) * 3))
        assert np.all(out.data <= 0)


class TestL2Normalize:
    def test_unit_norm_rows(self, rng):
        out = F.l2_normalize(Tensor(rng.normal(size=(4, 6))))
        np.testing.assert_allclose(
            np.linalg.norm(out.data, axis=1), np.ones(4)
        )

    def test_zero_vector_stays_zero(self):
        out = F.l2_normalize(Tensor(np.zeros((2, 3))))
        np.testing.assert_allclose(out.data, 0.0)

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        w = rng.normal(size=(3, 4))
        assert_gradcheck(lambda: (F.l2_normalize(x) * Tensor(w)).sum(), [x])

    def test_scale_invariance(self, rng):
        x = rng.normal(size=(3, 4))
        a = F.l2_normalize(Tensor(x)).data
        b = F.l2_normalize(Tensor(7.5 * x)).data
        np.testing.assert_allclose(a, b, atol=1e-12)


class TestEmbeddingLookup:
    def test_forward_matches_indexing(self, rng):
        w = Tensor(rng.normal(size=(6, 3)))
        idx = np.array([0, 5, 2])
        np.testing.assert_allclose(
            F.embedding_lookup(w, idx).data, w.data[idx]
        )

    def test_repeated_indices_accumulate_grads(self):
        w = Tensor(np.zeros((3, 2)), requires_grad=True)
        F.embedding_lookup(w, np.array([1, 1, 1])).sum().backward()
        np.testing.assert_allclose(w.grad[1], [3.0, 3.0])
        np.testing.assert_allclose(w.grad[0], [0.0, 0.0])

    def test_2d_index_shape(self, rng):
        w = Tensor(rng.normal(size=(6, 3)))
        out = F.embedding_lookup(w, np.array([[0, 1], [2, 3]]))
        assert out.shape == (2, 2, 3)

    def test_gradcheck(self, rng):
        w = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        idx = np.array([0, 2, 2, 4])
        assert_gradcheck(
            lambda: (F.embedding_lookup(w, idx) ** 2).sum(), [w]
        )


class TestSegmentMean:
    def test_manual_example(self):
        x = Tensor(np.array([[1.0], [3.0], [5.0]]))
        out = F.segment_mean(x, np.array([0, 0, 1]), 3)
        np.testing.assert_allclose(out.data, [[2.0], [5.0], [0.0]])

    def test_empty_segment_is_zero(self):
        x = Tensor(np.ones((2, 3)))
        out = F.segment_mean(x, np.array([2, 2]), 4)
        np.testing.assert_allclose(out.data[0], 0.0)
        np.testing.assert_allclose(out.data[2], 1.0)

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        ids = np.array([0, 0, 1, 2, 2])
        assert_gradcheck(lambda: (F.segment_mean(x, ids, 4) ** 2).sum(), [x])

    @given(st.integers(1, 20), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_mean_of_constant_rows_is_constant(self, n, segs):
        rng = np.random.default_rng(0)
        ids = rng.integers(0, segs, size=n)
        x = Tensor(np.ones((n, 2)) * 3.0)
        out = F.segment_mean(x, ids, segs).data
        present = np.unique(ids)
        np.testing.assert_allclose(out[present], 3.0)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        out = F.dropout(x, 0.5, rng, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_zero_probability_is_identity(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        out = F.dropout(x, 0.0, rng, training=True)
        np.testing.assert_allclose(out.data, x.data)

    def test_invalid_probability_raises(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, rng)

    def test_expectation_preserved(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, rng, training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_grad_respects_mask(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((10, 10)), requires_grad=True)
        out = F.dropout(x, 0.5, rng, training=True)
        out.sum().backward()
        # Gradient is zero exactly where the output was dropped.
        np.testing.assert_allclose((x.grad == 0), (out.data == 0))


class TestBPRLoss:
    def test_positive_margin_gives_small_loss(self):
        pos = Tensor(np.full(4, 10.0))
        neg = Tensor(np.zeros(4))
        assert F.bpr_loss(pos, neg).item() < 0.01

    def test_symmetric_scores_give_log2(self):
        pos = Tensor(np.zeros(4))
        neg = Tensor(np.zeros(4))
        assert F.bpr_loss(pos, neg).item() == pytest.approx(np.log(2.0))

    def test_gradcheck(self, rng):
        pos = Tensor(rng.normal(size=(5,)), requires_grad=True)
        neg = Tensor(rng.normal(size=(5,)), requires_grad=True)
        assert_gradcheck(lambda: F.bpr_loss(pos, neg), [pos, neg])

    def test_gradient_direction(self):
        pos = Tensor(np.zeros(1), requires_grad=True)
        neg = Tensor(np.zeros(1), requires_grad=True)
        F.bpr_loss(pos, neg).backward()
        assert pos.grad[0] < 0  # increasing pos decreases loss
        assert neg.grad[0] > 0


class TestInfoNCE:
    def test_perfect_alignment_lower_than_random(self, rng):
        q = F.l2_normalize(Tensor(rng.normal(size=(6, 4))))
        aligned = F.info_nce(q, q, 0.5).item()
        shuffled = F.info_nce(
            q, Tensor(q.data[rng.permutation(6)]), 0.5
        ).item()
        assert aligned < shuffled

    def test_row_weights_scale_loss(self, rng):
        q = Tensor(rng.normal(size=(4, 3)))
        k = Tensor(rng.normal(size=(4, 3)))
        base = F.info_nce(q, k, 1.0).item()
        half = F.info_nce(q, k, 1.0, row_weights=np.full(4, 0.5)).item()
        assert half == pytest.approx(0.5 * base)

    def test_positive_mask_shape_checked(self, rng):
        q = Tensor(rng.normal(size=(4, 3)))
        with pytest.raises(ValueError, match="positive_mask"):
            F.info_nce(q, q, 1.0, positive_mask=np.ones((3, 3), dtype=bool))

    def test_mask_includes_self_automatically(self, rng):
        q = Tensor(rng.normal(size=(3, 2)))
        mask = np.zeros((3, 3), dtype=bool)  # empty: falls back to identity
        loss_a = F.info_nce(q, q, 1.0, positive_mask=mask).item()
        loss_b = F.info_nce(q, q, 1.0).item()
        assert loss_a == pytest.approx(loss_b)

    def test_wider_positives_change_loss(self, rng):
        q = Tensor(rng.normal(size=(4, 3)))
        k = Tensor(rng.normal(size=(4, 3)))
        mask = np.eye(4, dtype=bool)
        mask[0, 1] = True
        base = F.info_nce(q, k, 1.0).item()
        wide = F.info_nce(q, k, 1.0, positive_mask=mask).item()
        assert wide != pytest.approx(base)

    def test_gradcheck_with_mask_and_weights(self, rng):
        q = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        k = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        mask = np.eye(4, dtype=bool)
        mask[1, 2] = mask[2, 0] = True
        weights = np.array([0.4, 0.1, 0.3, 0.2])
        assert_gradcheck(
            lambda: F.info_nce(q, k, 0.7, row_weights=weights, positive_mask=mask),
            [q, k],
        )

    def test_loss_nonnegative_for_identity_pairs(self, rng):
        q = F.l2_normalize(Tensor(rng.normal(size=(5, 8))))
        assert F.info_nce(q, q, 1.0).item() >= 0.0


class TestHelpers:
    def test_matmul_const_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        c = rng.normal(size=(4, 2))
        assert_gradcheck(lambda: (F.matmul_const(x, c) ** 2).sum(), [x])

    def test_scale_rows_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        w = np.array([0.5, 2.0, 0.0])
        assert_gradcheck(lambda: (F.scale_rows(x, w) ** 2).sum(), [x])

    def test_scale_rows_zero_weight_blocks_grad(self, rng):
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        F.scale_rows(x, np.array([0.0, 1.0])).sum().backward()
        np.testing.assert_allclose(x.grad[0], 0.0)

    def test_mse_loss(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = F.mse_loss(pred, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)
