"""Tests for optimisers: convergence, weight decay, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import SGD, Adam, Parameter, Tensor


def quadratic_loss(param: Parameter, target: np.ndarray):
    diff = param - Tensor(target)
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        target = np.array([1.0, -2.0, 3.0])
        param = Parameter(np.zeros(3))
        opt = SGD([param], lr=0.1)
        for _ in range(200):
            loss = quadratic_loss(param, target)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-4)

    def test_momentum_accelerates(self):
        target = np.array([5.0])

        def run(momentum):
            param = Parameter(np.zeros(1))
            opt = SGD([param], lr=0.01, momentum=momentum)
            for _ in range(50):
                loss = quadratic_loss(param, target)
                opt.zero_grad()
                loss.backward()
                opt.step()
            return abs(param.data[0] - 5.0)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_parameters(self):
        param = Parameter(np.ones(3))
        opt = SGD([param], lr=0.1, weight_decay=1.0)
        # No data gradient at all: decay only.
        param.grad = np.zeros(3)
        opt.step()
        assert np.all(param.data < 1.0)

    def test_skips_parameters_without_grad(self):
        param = Parameter(np.ones(2))
        opt = SGD([param], lr=0.1)
        opt.step()  # must not raise
        np.testing.assert_allclose(param.data, 1.0)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        target = np.array([1.0, -2.0, 3.0])
        param = Parameter(np.zeros(3))
        opt = Adam([param], lr=0.1)
        for _ in range(300):
            loss = quadratic_loss(param, target)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_first_step_magnitude_close_to_lr(self):
        # Adam's bias correction makes the first step ~lr in size.
        param = Parameter(np.zeros(1))
        opt = Adam([param], lr=0.05)
        param.grad = np.array([1.0])
        opt.step()
        assert abs(param.data[0] + 0.05) < 1e-6

    def test_weight_decay_applied(self):
        decayed = Parameter(np.ones(1) * 10)
        plain = Parameter(np.ones(1) * 10)
        opt_d = Adam([decayed], lr=0.01, weight_decay=0.5)
        opt_p = Adam([plain], lr=0.01, weight_decay=0.0)
        for _ in range(10):
            decayed.grad = np.zeros(1)
            plain.grad = np.zeros(1)
            opt_d.step()
            opt_p.step()
        assert decayed.data[0] < plain.data[0]

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], betas=(1.0, 0.999))

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_zero_grad_clears(self):
        param = Parameter(np.ones(2))
        param.grad = np.ones(2)
        Adam([param]).zero_grad()
        assert param.grad is None
