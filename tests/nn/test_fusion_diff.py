"""Differential harness: fused execution is bit-identical to eager.

The fusion contract (:mod:`repro.nn.fusion`) promises that enabling
``fused_mode`` changes the *tape*, never the *numbers*: every loss
value, every parameter gradient, and every post-optimizer-step
parameter must carry the exact same float64 bits as the eager path.
This suite locks that down three ways:

- a property sweep over every registry model (one full
  forward/backward/Adam step, name-derived seeds and batch shapes),
- an IMCAT ``training_loss`` differential across the paper's ablation
  axes with clustering both inactive and active,
- finite-difference gradchecks of each fused kernel in isolation, plus
  tape-analysis assertions that fusion actually shrank the graph.

Bitwise equality is asserted with ``np.array_equal`` — no tolerances.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro import obs
from repro.bench import MODEL_BUILDERS
from repro.core import IMCAT, IMCATConfig
from repro.data import BPRSampler, ItemTagSampler
from repro.models import BPRMF
from repro.nn import Adam, Tensor, fusion
from repro.nn import functional as F

from ..helpers import assert_gradcheck


def _seed(name: str) -> int:
    """Deterministic per-model seed so shapes/draws vary across entries."""
    return zlib.crc32(name.encode("utf-8")) % 100_000


def _assert_same_grads(eager: dict, fused: dict) -> None:
    assert eager.keys() == fused.keys()
    for key in eager:
        if eager[key] is None or fused[key] is None:
            assert eager[key] is None and fused[key] is None, key
        else:
            assert np.array_equal(eager[key], fused[key]), key


def _full_step(model, batch, rng):
    """One loss/backward/Adam step; returns (loss, grads, params)."""
    model.train()
    model.refresh_epoch(0)
    model.begin_step()
    loss = model.bpr_loss(batch)
    extra = model.extra_loss(rng)
    if extra is not None:
        loss = loss + extra
    optimizer = Adam(model.parameters(), lr=0.01)
    optimizer.zero_grad()
    loss.backward()
    grads = {
        name: None if param.grad is None else param.grad.copy()
        for name, param in model.named_parameters()
    }
    optimizer.step()
    return float(loss.item()), grads, model.state_dict()


class TestModelStepDifferential:
    """Every registry model: fused == eager to the bit through one step."""

    @pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
    def test_step_bit_identical(self, name, small_dataset, small_split):
        seed = _seed(name)
        batch_size = 17 + (seed % 3) * 16  # vary shapes across models
        sampler = BPRSampler(small_split.train, seed=seed)
        batch = next(sampler.epoch(batch_size, shuffle=False))

        def run(fused):
            model = MODEL_BUILDERS[name](
                small_dataset, small_split, 8, np.random.default_rng(seed)
            )
            with fusion.fused_mode(fused):
                return _full_step(model, batch, np.random.default_rng(seed + 1))

        loss_eager, grads_eager, params_eager = run(False)
        loss_fused, grads_fused, params_fused = run(True)
        assert loss_eager == loss_fused
        _assert_same_grads(grads_eager, grads_fused)
        assert params_eager.keys() == params_fused.keys()
        for key in params_eager:
            assert np.array_equal(params_eager[key], params_fused[key]), key

    @pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
    def test_tag_loss_bit_identical(self, name, small_dataset, small_split):
        seed = _seed(name)
        probe = MODEL_BUILDERS[name](
            small_dataset, small_split, 8, np.random.default_rng(seed)
        )
        if not hasattr(probe, "tag_bpr_loss"):
            pytest.skip(f"{name} is not tag-aware")
        batch = next(
            ItemTagSampler(small_dataset, seed=seed).epoch(33, shuffle=False)
        )

        def run(fused):
            model = MODEL_BUILDERS[name](
                small_dataset, small_split, 8, np.random.default_rng(seed)
            )
            model.train()
            with fusion.fused_mode(fused):
                loss = model.tag_bpr_loss(batch)
                model.zero_grad()
                loss.backward()
            grads = {
                key: None if param.grad is None else param.grad.copy()
                for key, param in model.named_parameters()
            }
            return float(loss.item()), grads

        loss_eager, grads_eager = run(False)
        loss_fused, grads_fused = run(True)
        assert loss_eager == loss_fused
        _assert_same_grads(grads_eager, grads_fused)


#: Compact slice of the paper's Table III / Fig. 6 ablation axes — each
#: entry exercises a different branch mix inside the fused alignment.
ABLATIONS = {
    "full": {},
    "no-nlt": {"use_nlt": False},
    "no-isa": {"use_isa": False},
    "no-relatedness": {"use_relatedness": False},
    "wo-ui": {"align_item": False},
    "wo-ut": {"align_tag": False},
    "wo-uit": {"use_alignment": False},
}


class TestImcatDifferential:
    """The joint IMCAT objective fused vs eager, across ablation axes."""

    @pytest.mark.parametrize("clustering", [False, True])
    @pytest.mark.parametrize("variant", sorted(ABLATIONS))
    def test_training_loss_bit_identical(
        self, variant, clustering, small_dataset, small_split
    ):
        config = IMCATConfig(
            num_intents=4, align_batch_size=32, **ABLATIONS[variant]
        )
        ui = next(BPRSampler(small_split.train, seed=3).epoch(64, shuffle=False))
        it = next(
            ItemTagSampler(small_dataset, seed=4).epoch(64, shuffle=False)
        )
        items = np.arange(min(32, small_dataset.num_items))

        def run(fused):
            rng = np.random.default_rng(7)
            backbone = BPRMF(
                small_dataset.num_users, small_dataset.num_items, 16, rng
            )
            model = IMCAT(
                backbone, small_dataset, small_split.train, config, rng=rng
            )
            model.train()
            if clustering:
                model.activate_clustering(np.random.default_rng(11))
            model.refresh_epoch(0)
            model.begin_step()
            with fusion.fused_mode(fused):
                loss = model.training_loss(ui, it, items, np.random.default_rng(13))
                model.zero_grad()
                loss.backward()
            grads = {
                key: None if param.grad is None else param.grad.copy()
                for key, param in model.named_parameters()
            }
            return float(loss.item()), grads

        loss_eager, grads_eager = run(False)
        loss_fused, grads_fused = run(True)
        assert loss_eager == loss_fused
        _assert_same_grads(grads_eager, grads_fused)


class TestFusedOpGradcheck:
    """Finite-difference checks of each fused kernel in isolation."""

    def test_elementwise_bpr(self, rng):
        pos = Tensor(rng.normal(size=23), requires_grad=True)
        neg = Tensor(rng.normal(size=23), requires_grad=True)
        with fusion.fused_mode(True):
            assert_gradcheck(lambda: F.bpr_loss(pos, neg), [pos, neg])

    def test_info_nce_with_mask_and_weights(self, rng):
        queries = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        keys = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        mask = np.eye(6, dtype=bool)
        mask[0, 3] = mask[2, 5] = True  # widened positive sets (Eq. 17)
        weights = rng.uniform(0.5, 1.5, size=6)
        with fusion.fused_mode(True):
            assert_gradcheck(
                lambda: F.info_nce(queries, keys, 0.7, weights, mask),
                [queries, keys],
            )

    def test_batched_linear(self, rng):
        x = Tensor(rng.normal(size=(3, 5, 4)), requires_grad=True)
        weights = [
            Tensor(rng.normal(size=(2, 4)), requires_grad=True)
            for _ in range(3)
        ]
        biases = [
            Tensor(rng.normal(size=2), requires_grad=True) for _ in range(3)
        ]
        with fusion.fused_mode(True):
            assert_gradcheck(
                lambda: fusion.batched_linear(x, weights, biases).sum(),
                [x] + weights + biases,
            )

    def test_dot_bpr(self, rng):
        users = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        items = Tensor(rng.normal(size=(5, 6)), requires_grad=True)
        anchors = np.array([0, 1, 3, 3, 2])
        positives = np.array([0, 2, 1, 1, 4])
        negatives = np.array([3, 0, 4, 2, 0])
        with fusion.fused_mode(True):
            loss_builder = lambda: fusion.dot_bpr(
                users, items, anchors, positives, negatives
            )
            assert loss_builder() is not None
            assert_gradcheck(loss_builder, [users, items])


class TestFusionBookkeeping:
    """Mode management, stats accounting, and tape analysis."""

    def test_fused_mode_nests_and_restores(self):
        assert not fusion.is_fused()
        with fusion.fused_mode(True):
            assert fusion.is_fused()
            with fusion.fused_mode(False):
                assert not fusion.is_fused()
            assert fusion.is_fused()
        assert not fusion.is_fused()

    def test_stats_count_kernel_calls_without_fallbacks(self, rng):
        fusion.reset()
        pos = Tensor(rng.normal(size=16), requires_grad=True)
        neg = Tensor(rng.normal(size=16), requires_grad=True)
        with fusion.fused_mode(True):
            for _ in range(3):
                F.bpr_loss(pos, neg).backward()
        assert fusion.stats.kernel_calls == 3
        assert fusion.stats.kernels_compiled == 1  # cached after first call
        assert fusion.stats.fallbacks == 0
        assert fusion.stats.nodes_saved > 0

    def test_record_metrics_flushes_and_resets(self, rng):
        fusion.reset()
        pos = Tensor(rng.normal(size=8), requires_grad=True)
        neg = Tensor(rng.normal(size=8), requires_grad=True)
        with fusion.fused_mode(True):
            F.bpr_loss(pos, neg).backward()
        metrics = obs.MetricsRegistry()
        fusion.record_metrics(metrics)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["fusion.kernel_calls"] == 1
        assert fusion.stats.kernel_calls == 0  # reset_after drained them

    def test_analyze_finds_eager_chains_and_fused_shrink(self, rng):
        pos = Tensor(rng.normal(size=16), requires_grad=True)
        neg = Tensor(rng.normal(size=16), requires_grad=True)
        eager_report = fusion.analyze(F.bpr_loss(pos, neg))
        assert eager_report.fusable_nodes >= 2
        with fusion.fused_mode(True):
            fused_report = fusion.analyze(F.bpr_loss(pos, neg))
        assert fused_report.nodes < eager_report.nodes
        assert fused_report.fusable_nodes == 0
