"""Tests for model persistence."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import load_model, save_model
from repro.bench import MODEL_BUILDERS
from repro.core import IMCAT, IMCATConfig
from repro.models import BPRMF, LightGCN


class TestSaveLoad:
    def test_backbone_roundtrip(self, small_dataset, tmp_path):
        model = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 16,
            np.random.default_rng(0),
        )
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        other = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 16,
            np.random.default_rng(99),
        )
        load_model(other, path)
        np.testing.assert_allclose(
            model.all_scores(np.array([0, 1])),
            other.all_scores(np.array([0, 1])),
        )

    def test_imcat_roundtrip_with_cluster_state(
        self, small_dataset, small_split, tmp_path
    ):
        rng = np.random.default_rng(0)
        backbone = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 16, rng
        )
        model = IMCAT(
            backbone, small_dataset, small_split.train,
            IMCATConfig(num_intents=4), rng=rng,
        )
        model.activate_clustering(np.random.default_rng(1))
        path = str(tmp_path / "imcat.npz")
        save_model(model, path)

        rng2 = np.random.default_rng(5)
        other = IMCAT(
            BPRMF(small_dataset.num_users, small_dataset.num_items, 16, rng2),
            small_dataset, small_split.train,
            IMCATConfig(num_intents=4), rng=rng2,
        )
        load_model(other, path)
        np.testing.assert_array_equal(model.tag_clusters, other.tag_clusters)
        assert other.clustering_active
        np.testing.assert_allclose(
            model.all_scores(np.array([0])), other.all_scores(np.array([0]))
        )

    def test_extension_added_if_missing(self, small_dataset, tmp_path):
        model = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 8,
            np.random.default_rng(0),
        )
        base = str(tmp_path / "weights")
        save_model(model, base + ".npz")
        load_model(model, base)  # resolves to .npz

    def test_architecture_mismatch_rejected(self, small_dataset, tmp_path):
        model = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 16,
            np.random.default_rng(0),
        )
        path = str(tmp_path / "m.npz")
        save_model(model, path)
        wrong = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 8,
            np.random.default_rng(0),
        )
        with pytest.raises(ValueError):
            load_model(wrong, path)

    def test_lightgcn_scores_preserved(self, small_dataset, small_split, tmp_path):
        interactions = (small_split.train.user_ids, small_split.train.item_ids)
        model = LightGCN(
            small_dataset.num_users, small_dataset.num_items,
            interactions, 16, rng=np.random.default_rng(0),
        )
        path = str(tmp_path / "gcn.npz")
        save_model(model, path)
        other = LightGCN(
            small_dataset.num_users, small_dataset.num_items,
            interactions, 16, rng=np.random.default_rng(7),
        )
        load_model(other, path)
        np.testing.assert_allclose(
            model.all_scores(np.array([2])), other.all_scores(np.array([2]))
        )


class TestPathNormalization:
    """Regressions for the double-suffix / exists-ordering bugs: the old
    helpers appended ``.npz`` without checking whether it was already
    there, so ``save_model(m, "w.npz")`` + ``load_model(m, "w.npz.npz")``
    silently missed the file (np.savez had written ``w.npz``)."""

    def _model(self, small_dataset):
        return BPRMF(
            small_dataset.num_users, small_dataset.num_items, 8,
            np.random.default_rng(0),
        )

    def test_save_returns_single_suffix_path(self, small_dataset, tmp_path):
        model = self._model(small_dataset)
        written = save_model(model, str(tmp_path / "w"))
        assert written == str(tmp_path / "w.npz")
        assert os.path.exists(written)

    def test_load_tolerates_doubled_suffix(self, small_dataset, tmp_path):
        model = self._model(small_dataset)
        save_model(model, str(tmp_path / "w.npz"))
        load_model(self._model(small_dataset), str(tmp_path / "w.npz.npz"))

    def test_save_collapses_doubled_suffix(self, small_dataset, tmp_path):
        model = self._model(small_dataset)
        written = save_model(model, str(tmp_path / "w.npz.npz"))
        assert written == str(tmp_path / "w.npz")
        assert os.listdir(tmp_path) == ["w.npz"]

    def test_legacy_bare_named_file_still_loads(self, small_dataset, tmp_path):
        # Archives written before normalisation may sit under the bare
        # name; the literal spelling must keep working.
        model = self._model(small_dataset)
        written = save_model(model, str(tmp_path / "legacy"))
        os.rename(written, str(tmp_path / "legacy"))
        load_model(self._model(small_dataset), str(tmp_path / "legacy"))

    def test_missing_file_raises_with_normalized_name(
        self, small_dataset, tmp_path
    ):
        with pytest.raises(FileNotFoundError):
            load_model(self._model(small_dataset), str(tmp_path / "absent"))


class TestAllModelsRoundtrip:
    """Every registered model must survive save -> fresh construct ->
    load with bit-identical scores."""

    @pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
    def test_roundtrip_preserves_scores(
        self, name, small_dataset, small_split, tmp_path
    ):
        builder = MODEL_BUILDERS[name]
        model = builder(small_dataset, small_split, 8, np.random.default_rng(0))
        users = np.arange(min(4, small_dataset.num_users))
        expected = model.all_scores(users)
        path = save_model(model, str(tmp_path / f"{name}.npz"))

        fresh = builder(small_dataset, small_split, 8, np.random.default_rng(9))
        load_model(fresh, path)
        np.testing.assert_array_equal(expected, fresh.all_scores(users))

    @pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
    def test_load_overwrites_scrambled_params(
        self, name, small_dataset, small_split, tmp_path
    ):
        builder = MODEL_BUILDERS[name]
        model = builder(small_dataset, small_split, 8, np.random.default_rng(0))
        users = np.arange(min(4, small_dataset.num_users))
        expected = model.all_scores(users)
        path = save_model(model, str(tmp_path / f"{name}.npz"))

        noise = np.random.default_rng(123)
        for param in model.parameters():
            param.data += noise.normal(scale=0.5, size=param.data.shape)
        load_model(model, path)
        np.testing.assert_array_equal(expected, model.all_scores(users))


class TestRecommendHelper:
    def test_returns_topn(self, small_dataset):
        model = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 8,
            np.random.default_rng(0),
        )
        items = model.recommend(0, top_n=5)
        assert len(items) == 5

    def test_excludes_items(self, small_dataset):
        model = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 8,
            np.random.default_rng(0),
        )
        full = model.recommend(0, top_n=3)
        excluded = model.recommend(0, top_n=3, exclude={int(full[0])})
        assert int(full[0]) not in excluded
