"""Tests for file loaders and the dataset registry."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data import (
    available_datasets,
    load_dataset,
    load_pairs_dataset,
    read_delimited,
)
from repro.data.loaders import load_hetrec_movielens


class TestReadDelimited:
    def test_parses_columns(self, tmp_path):
        path = tmp_path / "f.dat"
        path.write_text("userID\titemID\trating\n1\t10\t4.5\n2\t20\t3.0\n")
        users, items, ratings = read_delimited(str(path), (0, 1, 2))
        np.testing.assert_array_equal(users, [1, 2])
        np.testing.assert_array_equal(ratings, [4.5, 3.0])

    def test_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "f.dat"
        path.write_text("h\ta\n1\t2\nbad\tline\n3\t4\n")
        a, b = read_delimited(str(path), (0, 1))
        assert len(a) == 2

    def test_skips_short_lines(self, tmp_path):
        path = tmp_path / "f.dat"
        path.write_text("h\ta\tb\n1\t2\t3\n4\t5\n")
        a, b, c = read_delimited(str(path), (0, 1, 2))
        assert len(a) == 1

    def test_no_header_mode(self, tmp_path):
        path = tmp_path / "f.tsv"
        path.write_text("1\t2\n3\t4\n")
        a, b = read_delimited(str(path), (0, 1), skip_header=False)
        assert len(a) == 2


class TestHetrecLoader:
    def test_parses_and_preprocesses(self, tmp_path):
        rng = np.random.default_rng(0)
        # 15 users x 30 movies dense-ish block so 10-core survives.
        lines = ["userID\tmovieID\trating\tts"]
        for u in range(15):
            for m in rng.choice(30, size=20, replace=False):
                lines.append(f"{u}\t{m}\t5.0\t0")
        (tmp_path / "user_ratedmovies.dat").write_text("\n".join(lines))
        tag_lines = ["movieID\ttagID\tweight"]
        for m in range(30):
            for t in range(6):
                tag_lines.append(f"{m}\t{t}\t1")
        (tmp_path / "movie_tags.dat").write_text("\n".join(tag_lines))
        ds = load_hetrec_movielens(str(tmp_path))
        assert ds.num_users > 0
        assert ds.num_tag_assignments > 0
        assert ds.name == "hetrec-mv"


class TestRegistry:
    def test_available_lists_seven(self):
        assert len(available_datasets()) == 7

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_dataset("nonexistent")

    def test_synthetic_fallback_without_data_dir(self):
        ds = load_dataset("hetrec-del", scale=0.05, seed=0)
        assert ds.num_users > 0

    def test_fallback_when_files_missing(self, tmp_path):
        with pytest.warns(RuntimeWarning, match="falling back"):
            ds = load_dataset(
                "hetrec-mv", data_dir=str(tmp_path), scale=0.03, seed=0
            )
        assert ds.num_users > 0  # no files there -> synthetic

    def test_load_pairs_dataset(self, tmp_path):
        rng = np.random.default_rng(0)
        inter = tmp_path / "ui.tsv"
        lines = []
        for u in range(20):
            for m in rng.choice(25, size=20, replace=False):
                lines.append(f"{u}\t{m}")
        inter.write_text("\n".join(lines))
        tags = tmp_path / "it.tsv"
        tags.write_text("\n".join(f"{m}\t{m % 3}" for m in range(25)))
        ds = load_pairs_dataset(str(inter), str(tags), "custom")
        assert ds.name == "custom"
        assert ds.num_users > 0


class TestCiteulikeLoader:
    def test_parses_citeulike_t_format(self, tmp_path):
        from repro.data import load_citeulike_t

        rng = np.random.default_rng(0)
        # 20 users each collecting 20 of 25 articles (10-core survives).
        lines = []
        for _u in range(20):
            items = rng.choice(25, size=20, replace=False)
            lines.append(f"{len(items)} " + " ".join(map(str, items)))
        (tmp_path / "users.dat").write_text("\n".join(lines))
        tag_lines = []
        for _tag in range(8):
            items = rng.choice(25, size=10, replace=False)
            tag_lines.append(" ".join(map(str, items)))
        (tmp_path / "tag-item.dat").write_text("\n".join(tag_lines))
        ds = load_citeulike_t(str(tmp_path))
        assert ds.name == "citeulike"
        assert ds.num_users > 0
        assert ds.num_tag_assignments > 0

    def test_registry_prefers_real_files(self, tmp_path):
        # With no files present the registry falls back to synthetic,
        # warning about the missing raw files.
        with pytest.warns(RuntimeWarning, match="falling back"):
            ds = load_dataset("citeulike", data_dir=str(tmp_path), scale=0.03)
        assert ds.num_users > 0
