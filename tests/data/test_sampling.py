"""Tests for BPR negative sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import BPRSampler, ItemTagSampler, sample_item_batches

from ..helpers import tiny_dataset


class TestBPRSampler:
    def test_epoch_covers_every_positive(self, tiny):
        sampler = BPRSampler(tiny, seed=0)
        seen = []
        for batch in sampler.epoch(batch_size=3):
            seen.extend(zip(batch.anchors, batch.positives))
        assert sorted(seen) == sorted(zip(tiny.user_ids, tiny.item_ids))

    def test_negatives_not_in_user_positives(self, tiny):
        sampler = BPRSampler(tiny, seed=0)
        positives = [set(items.tolist()) for items in tiny.items_of_user()]
        for _ in range(5):
            for batch in sampler.epoch(batch_size=4):
                for user, neg in zip(batch.anchors, batch.negatives):
                    assert neg not in positives[user]

    def test_batch_size_respected(self, tiny):
        sampler = BPRSampler(tiny, seed=0)
        sizes = [len(b) for b in sampler.epoch(batch_size=4)]
        assert sizes == [4, 4, 2]

    def test_invalid_batch_size(self, tiny):
        sampler = BPRSampler(tiny, seed=0)
        with pytest.raises(ValueError):
            next(sampler.epoch(batch_size=0))

    def test_shuffle_false_is_deterministic_order(self, tiny):
        sampler = BPRSampler(tiny, seed=0)
        batch = next(sampler.epoch(batch_size=10, shuffle=False))
        np.testing.assert_array_equal(batch.anchors, tiny.user_ids)

    def test_num_positives(self, tiny):
        assert BPRSampler(tiny).num_positives == tiny.num_interactions


class TestItemTagSampler:
    def test_epoch_covers_every_assignment(self, tiny):
        sampler = ItemTagSampler(tiny, seed=0)
        seen = []
        for batch in sampler.epoch(batch_size=3):
            seen.extend(zip(batch.anchors, batch.positives))
        assert sorted(seen) == sorted(zip(tiny.tag_item_ids, tiny.tag_ids))

    def test_negative_tags_not_assigned(self, tiny):
        sampler = ItemTagSampler(tiny, seed=0)
        positives = [set(tags.tolist()) for tags in tiny.tags_of_item()]
        for batch in sampler.epoch(batch_size=4):
            for item, neg in zip(batch.anchors, batch.negatives):
                assert neg not in positives[item]

    def test_invalid_batch_size(self, tiny):
        with pytest.raises(ValueError):
            next(ItemTagSampler(tiny).epoch(batch_size=-1))


class TestItemBatches:
    def test_covers_all_items_once(self):
        rng = np.random.default_rng(0)
        batches = list(sample_item_batches(10, 3, rng))
        flat = np.concatenate(batches)
        assert sorted(flat.tolist()) == list(range(10))

    def test_batch_sizes(self):
        rng = np.random.default_rng(0)
        sizes = [len(b) for b in sample_item_batches(10, 4, rng)]
        assert sizes == [4, 4, 2]
