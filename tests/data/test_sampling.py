"""Tests for BPR negative sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    BPRSampler,
    IndexCycler,
    ItemTagSampler,
    TripletCycler,
    sample_item_batches,
)

from ..helpers import tiny_dataset


class TestBPRSampler:
    def test_epoch_covers_every_positive(self, tiny):
        sampler = BPRSampler(tiny, seed=0)
        seen = []
        for batch in sampler.epoch(batch_size=3):
            seen.extend(zip(batch.anchors, batch.positives))
        assert sorted(seen) == sorted(zip(tiny.user_ids, tiny.item_ids))

    def test_negatives_not_in_user_positives(self, tiny):
        sampler = BPRSampler(tiny, seed=0)
        positives = [set(items.tolist()) for items in tiny.items_of_user()]
        for _ in range(5):
            for batch in sampler.epoch(batch_size=4):
                for user, neg in zip(batch.anchors, batch.negatives):
                    assert neg not in positives[user]

    def test_batch_size_respected(self, tiny):
        sampler = BPRSampler(tiny, seed=0)
        sizes = [len(b) for b in sampler.epoch(batch_size=4)]
        assert sizes == [4, 4, 2]

    def test_invalid_batch_size(self, tiny):
        sampler = BPRSampler(tiny, seed=0)
        with pytest.raises(ValueError):
            next(sampler.epoch(batch_size=0))

    def test_shuffle_false_is_deterministic_order(self, tiny):
        sampler = BPRSampler(tiny, seed=0)
        batch = next(sampler.epoch(batch_size=10, shuffle=False))
        np.testing.assert_array_equal(batch.anchors, tiny.user_ids)

    def test_num_positives(self, tiny):
        assert BPRSampler(tiny).num_positives == tiny.num_interactions


class TestItemTagSampler:
    def test_epoch_covers_every_assignment(self, tiny):
        sampler = ItemTagSampler(tiny, seed=0)
        seen = []
        for batch in sampler.epoch(batch_size=3):
            seen.extend(zip(batch.anchors, batch.positives))
        assert sorted(seen) == sorted(zip(tiny.tag_item_ids, tiny.tag_ids))

    def test_negative_tags_not_assigned(self, tiny):
        sampler = ItemTagSampler(tiny, seed=0)
        positives = [set(tags.tolist()) for tags in tiny.tags_of_item()]
        for batch in sampler.epoch(batch_size=4):
            for item, neg in zip(batch.anchors, batch.negatives):
                assert neg not in positives[item]

    def test_invalid_batch_size(self, tiny):
        with pytest.raises(ValueError):
            next(ItemTagSampler(tiny).epoch(batch_size=-1))


class TestFastMatchesReference:
    """The searchsorted rejection path vs the original set-based loop.

    Both consume the RNG identically, so two same-seed samplers must
    emit bit-identical negatives — not just equally distributed ones.
    """

    @pytest.mark.parametrize("factory", [BPRSampler, ItemTagSampler])
    @pytest.mark.parametrize("seed", range(4))
    def test_bit_identical_negatives(self, tiny, factory, seed):
        fast = factory(tiny, seed=seed)
        ref = factory(tiny, seed=seed)
        anchors = fast.anchors
        np.testing.assert_array_equal(
            fast.sample_negatives(anchors),
            ref.sample_negatives_reference(anchors),
        )

    def test_bit_identical_across_repeated_calls(self, tiny):
        # The RNG streams stay in lockstep call after call.
        fast = BPRSampler(tiny, seed=3)
        ref = BPRSampler(tiny, seed=3)
        for _ in range(5):
            anchors = tiny.user_ids[:4]
            np.testing.assert_array_equal(
                fast.sample_negatives(anchors),
                ref.sample_negatives_reference(anchors),
            )

    def test_reference_never_emits_positives(self, tiny):
        sampler = BPRSampler(tiny, seed=0)
        positives = [set(items.tolist()) for items in tiny.items_of_user()]
        negatives = sampler.sample_negatives_reference(tiny.user_ids)
        for user, neg in zip(tiny.user_ids, negatives):
            assert neg not in positives[user]

    def test_negatives_cover_all_non_positives(self, tiny):
        # Distribution marginal: over many draws, every admissible item
        # appears and no inadmissible one does (uniform-with-rejection).
        sampler = BPRSampler(tiny, seed=1)
        user = np.zeros(4000, dtype=np.int64)  # user 0: positives {0, 1, 2}
        drawn = sampler.sample_negatives(user)
        assert set(drawn.tolist()) == {3, 4, 5}
        # Roughly uniform over the 3 admissible items.
        counts = np.bincount(drawn, minlength=6)[3:]
        assert counts.min() > 0.8 * len(user) / 3

    def test_anchors_property_in_dataset_order(self, tiny):
        np.testing.assert_array_equal(BPRSampler(tiny).anchors, tiny.user_ids)
        np.testing.assert_array_equal(
            ItemTagSampler(tiny).anchors, tiny.tag_item_ids
        )


class TestTripletCycler:
    def test_wrap_covers_every_positive_per_cycle(self, tiny):
        sampler = BPRSampler(tiny, seed=0)
        cycler = TripletCycler(sampler, batch_size=3, rng=np.random.default_rng(1))
        n = sampler.num_positives
        for _ in range(3):  # three full passes
            seen = []
            drawn = 0
            while drawn < n:
                batch = next(cycler)
                seen.extend(zip(batch.anchors, batch.positives))
                drawn += len(batch)
            assert sorted(seen) == sorted(zip(tiny.user_ids, tiny.item_ids))

    def test_reshuffles_between_cycles(self, tiny):
        sampler = BPRSampler(tiny, seed=0)
        cycler = TripletCycler(sampler, batch_size=10, rng=np.random.default_rng(2))
        first = next(cycler).anchors.copy()
        second = next(cycler).anchors.copy()
        assert not np.array_equal(first, second)

    def test_shuffle_false_keeps_dataset_order(self, tiny):
        sampler = BPRSampler(tiny, seed=0)
        cycler = TripletCycler(
            sampler, batch_size=10, rng=np.random.default_rng(0), shuffle=False
        )
        np.testing.assert_array_equal(next(cycler).anchors, tiny.user_ids)

    def test_negatives_always_valid(self, tiny):
        sampler = BPRSampler(tiny, seed=0)
        cycler = TripletCycler(sampler, batch_size=4, rng=np.random.default_rng(3))
        positives = [set(items.tolist()) for items in tiny.items_of_user()]
        for _ in range(10):
            batch = next(cycler)
            for user, neg in zip(batch.anchors, batch.negatives):
                assert neg not in positives[user]

    def test_invalid_batch_size(self, tiny):
        with pytest.raises(ValueError):
            TripletCycler(BPRSampler(tiny), 0, np.random.default_rng(0))

    def test_is_iterable(self, tiny):
        cycler = TripletCycler(BPRSampler(tiny), 4, np.random.default_rng(0))
        assert iter(cycler) is cycler


class TestIndexCycler:
    def test_covers_range_each_cycle(self):
        cycler = IndexCycler(10, 4, np.random.default_rng(0))
        for _ in range(3):
            seen = []
            while len(seen) < 10:
                seen.extend(next(cycler).tolist())
            assert sorted(seen) == list(range(10))

    def test_matches_sample_item_batches_semantics(self):
        # Same RNG: the first cycle equals one sample_item_batches pass.
        cycler = IndexCycler(10, 3, np.random.default_rng(7))
        from_cycler = [next(cycler) for _ in range(4)]
        from_func = list(sample_item_batches(10, 3, np.random.default_rng(7)))
        for a, b in zip(from_cycler, from_func):
            np.testing.assert_array_equal(a, b)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            IndexCycler(10, -1, np.random.default_rng(0))


class TestItemBatches:
    def test_covers_all_items_once(self):
        rng = np.random.default_rng(0)
        batches = list(sample_item_batches(10, 3, rng))
        flat = np.concatenate(batches)
        assert sorted(flat.tolist()) == list(range(10))

    def test_batch_sizes(self):
        rng = np.random.default_rng(0)
        sizes = [len(b) for b in sample_item_batches(10, 4, rng)]
        assert sizes == [4, 4, 2]
