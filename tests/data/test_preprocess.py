"""Tests for the preprocessing pipeline (Section V.A protocol)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    PreprocessConfig,
    binarize_ratings,
    k_core_filter,
    preprocess,
    preprocess_dataset,
)

from ..helpers import tiny_dataset


class TestBinarize:
    def test_keeps_only_high_ratings(self):
        users = np.array([0, 1, 2])
        items = np.array([0, 1, 2])
        ratings = np.array([5.0, 3.9, 4.0])
        u, v = binarize_ratings(users, items, ratings, threshold=4.0)
        np.testing.assert_array_equal(u, [0, 2])
        np.testing.assert_array_equal(v, [0, 2])

    def test_empty_input(self):
        u, v = binarize_ratings(np.array([]), np.array([]), np.array([]))
        assert len(u) == 0


class TestKCore:
    def test_removes_cold_users(self):
        # User 1 has a single interaction -> dropped at min_user=2.
        users = np.array([0, 0, 1])
        items = np.array([0, 1, 0])
        u, v = k_core_filter(users, items, min_user=2, min_item=1)
        assert 1 not in u

    def test_cascading_removal(self):
        # Dropping item 2 (1 interaction) pushes user 1 below threshold.
        users = np.array([0, 0, 1, 1])
        items = np.array([0, 1, 0, 2])
        u, v = k_core_filter(users, items, min_user=2, min_item=2)
        # Item 2 appears once -> removed; user 1 then has 1 -> removed;
        # item 0 then has 1 (user 0) -> removed; user 0 then has 1 -> removed.
        assert len(u) == 0

    def test_fixed_point_reached(self):
        users = np.array([0, 0, 1, 1])
        items = np.array([0, 1, 0, 1])
        u, v = k_core_filter(users, items, min_user=2, min_item=2)
        assert len(u) == 4  # everything survives

    @given(st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_result_satisfies_thresholds(self, min_user, min_item):
        rng = np.random.default_rng(0)
        users = rng.integers(0, 10, size=60)
        items = rng.integers(0, 15, size=60)
        u, v = k_core_filter(users, items, min_user, min_item)
        if len(u):
            assert np.bincount(u)[np.unique(u)].min() >= min_user
            assert np.bincount(v)[np.unique(v)].min() >= min_item


class TestPreprocess:
    def _raw(self):
        rng = np.random.default_rng(0)
        n = 2000
        users = rng.integers(0, 40, size=n)
        items = rng.integers(0, 60, size=n)
        tag_items = rng.integers(0, 60, size=800)
        tags = rng.integers(0, 20, size=800)
        return users, items, tag_items, tags

    def test_dense_reindexing(self):
        users, items, tag_items, tags = self._raw()
        ds = preprocess(users, items, tag_items, tags)
        assert ds.user_ids.max() == ds.num_users - 1
        assert ds.item_ids.max() <= ds.num_items - 1
        assert ds.tag_ids.max() <= ds.num_tags - 1

    def test_tag_support_threshold(self):
        users, items, tag_items, tags = self._raw()
        config = PreprocessConfig(min_tag_items=10)
        ds = preprocess(users, items, tag_items, tags, config=config)
        if ds.num_tag_assignments:
            assert ds.tag_degrees()[ds.tag_degrees() > 0].min() >= 10

    def test_tags_of_dropped_items_removed(self):
        users = np.array([0] * 10 + [1] * 10)
        items = np.array(list(range(10)) + list(range(10)))
        # Item 50 never interacted with -> its tags must vanish.
        tag_items = np.array([0, 1, 50] * 5)
        tags = np.array([0, 1, 2] * 5)
        ds = preprocess(
            users, items, tag_items, tags,
            config=PreprocessConfig(
                min_user_interactions=2, min_item_interactions=2,
                min_tag_items=1,
            ),
        )
        # Only tags of surviving items remain; all are in range.
        assert ds.tag_item_ids.max() < ds.num_items

    def test_too_strict_raises(self):
        with pytest.raises(ValueError, match="survive"):
            preprocess(
                np.array([0]), np.array([0]), np.array([]), np.array([]),
                config=PreprocessConfig(min_user_interactions=100),
            )

    def test_rating_binarisation_integrated(self):
        users = np.repeat(np.arange(4), 20)
        items = np.tile(np.arange(20), 4)
        ratings = np.ones(80) * 5
        ratings[:40] = 1.0  # first two users rated everything low
        ds = preprocess(
            users, items, np.array([]), np.array([]),
            ratings=ratings,
            config=PreprocessConfig(
                min_user_interactions=5, min_item_interactions=1,
                min_tag_items=1,
            ),
        )
        assert ds.num_users == 2

    def test_preprocess_dataset_wrapper(self):
        ds = preprocess_dataset(
            tiny_dataset(),
            config=PreprocessConfig(
                min_user_interactions=1, min_item_interactions=1,
                min_tag_items=1,
            ),
        )
        assert ds.num_interactions == 10
