"""Property tests for the dataset grouping helper."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import _group_by


class TestGroupBy:
    @given(st.integers(0, 60), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_matches_naive_grouping(self, n, groups):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, groups, size=n)
        values = rng.integers(0, 100, size=n)
        result = _group_by(keys, values, groups)
        assert len(result) == groups
        for g in range(groups):
            expected = sorted(values[keys == g].tolist())
            assert sorted(result[g].tolist()) == expected

    @given(st.integers(1, 8))
    @settings(max_examples=10, deadline=None)
    def test_empty_input(self, groups):
        result = _group_by(np.empty(0, int), np.empty(0, int), groups)
        assert len(result) == groups
        assert all(len(r) == 0 for r in result)

    def test_total_preserved(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 5, size=200)
        values = rng.integers(0, 10, size=200)
        result = _group_by(keys, values, 5)
        assert sum(len(r) for r in result) == 200
