"""Tests for degree-distribution analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    SyntheticConfig,
    analyze_item_degrees,
    fit_power_law,
    generate,
    gini_coefficient,
    head_share,
)


class TestPowerLawFit:
    def test_recovers_known_exponent(self):
        """Sampling from a discrete power law recovers alpha within 10%.

        The continuous-approximation MLE (Eq. 3.7 of Clauset et al.) is
        accurate for ``x_min >= 6``, so the fit uses that regime.
        """
        rng = np.random.default_rng(0)
        alpha_true = 2.5
        # Inverse-CDF sampling of a continuous Pareto, discretised.
        u = rng.random(200000)
        sample = np.floor((1 - u) ** (-1.0 / (alpha_true - 1.0))).astype(int)
        sample = sample[sample >= 1]
        fit = fit_power_law(sample, x_min=6)
        assert abs(fit.alpha - alpha_true) / alpha_true < 0.1

    def test_tail_cutoff_respected(self):
        degrees = np.array([1, 1, 1, 5, 6, 7, 8])
        fit = fit_power_law(degrees, x_min=5)
        assert fit.num_tail == 4

    def test_too_few_observations(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([3]), x_min=1)

    def test_plausible_range(self):
        fit = fit_power_law(np.array([1] * 50 + [2] * 20 + [5] * 5))
        assert fit.plausible()


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient(np.full(100, 7.0)) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_is_high(self):
        values = np.zeros(100)
        values[0] = 100.0
        assert gini_coefficient(values) > 0.95

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([]))

    def test_all_zero_returns_zero(self):
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_bounded(self):
        rng = np.random.default_rng(1)
        value = gini_coefficient(rng.exponential(size=200))
        assert 0.0 <= value <= 1.0


class TestHeadShare:
    def test_uniform_share_matches_quantile(self):
        share = head_share(np.full(100, 3.0), quantile=0.1)
        assert share == pytest.approx(0.1)

    def test_concentrated_head(self):
        degrees = np.array([100] + [1] * 99)
        assert head_share(degrees, 0.01) > 0.5

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            head_share(np.ones(5), 0.0)


class TestDatasetAnalysis:
    def test_generator_plants_power_law(self):
        """The synthetic generator must produce the long-tail structure
        the paper's Fig. 7 analysis relies on (exponent in the realistic
        range, head-heavy shares)."""
        config = SyntheticConfig(
            "t", 500, 800, 64, mean_user_degree=25, popularity_exponent=1.0
        )
        dataset = generate(config, seed=3)
        report = analyze_item_degrees(dataset)
        assert report.power_law.plausible()
        assert report.gini > 0.3
        assert report.top10_share > 0.25
        assert report.max_degree > report.median_degree * 4
