"""Tests for dataset caching: round-trips, argument fingerprints, and
torn-write recovery."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import testing
from repro.data import (
    DatasetCacheError,
    cached_generate,
    dataset_fingerprint,
    generate_preset,
    load_dataset_file,
    save_dataset,
)

from ..helpers import tiny_dataset


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    testing.reset()


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        tiny = tiny_dataset()
        path = str(tmp_path / "ds.npz")
        save_dataset(tiny, path)
        loaded = load_dataset_file(path)
        assert loaded.name == tiny.name
        np.testing.assert_array_equal(loaded.user_ids, tiny.user_ids)
        np.testing.assert_array_equal(loaded.tag_ids, tiny.tag_ids)
        assert loaded.num_users == tiny.num_users

    def test_extension_appended(self, tmp_path):
        tiny = tiny_dataset()
        base = str(tmp_path / "nosuffix")
        save_dataset(tiny, base)
        loaded = load_dataset_file(base)
        assert loaded.num_interactions == tiny.num_interactions


class TestCachedGenerate:
    def test_miss_then_hit(self, tmp_path):
        path = str(tmp_path / "cache.npz")
        calls = []

        def generator(name, scale, seed):
            calls.append(1)
            return generate_preset(name, scale=scale, seed=seed)

        first = cached_generate(generator, path, "hetrec-del", scale=0.03, seed=0)
        second = cached_generate(generator, path, "hetrec-del", scale=0.03, seed=0)
        assert len(calls) == 1  # second call served from disk
        np.testing.assert_array_equal(first.user_ids, second.user_ids)

    def test_different_args_regenerate(self, tmp_path):
        path = str(tmp_path / "cache.npz")
        calls = []

        def generator(name, scale, seed):
            calls.append((name, scale, seed))
            return generate_preset(name, scale=scale, seed=seed)

        cached_generate(generator, path, "hetrec-del", scale=0.03, seed=0)
        # Same path, different seed: a hit here would silently serve the
        # wrong dataset — the fingerprint forces a regeneration.
        with pytest.warns(RuntimeWarning, match="different arguments"):
            second = cached_generate(
                generator, path, "hetrec-del", scale=0.03, seed=1
            )
        assert calls == [("hetrec-del", 0.03, 0), ("hetrec-del", 0.03, 1)]
        expected = generate_preset("hetrec-del", scale=0.03, seed=1)
        np.testing.assert_array_equal(second.user_ids, expected.user_ids)
        # The archive now carries the new fingerprint: hit again.
        cached_generate(generator, path, "hetrec-del", scale=0.03, seed=1)
        assert len(calls) == 2

    def test_legacy_archive_without_fingerprint_regenerates(self, tmp_path):
        path = str(tmp_path / "cache.npz")
        save_dataset(tiny_dataset(), path)  # no fingerprint stored
        calls = []

        def generator():
            calls.append(1)
            return tiny_dataset()

        with pytest.warns(RuntimeWarning, match="different arguments"):
            cached_generate(generator, path)
        assert len(calls) == 1

    def test_fingerprint_is_argument_sensitive(self):
        base = dataset_fingerprint("a", scale=0.1, seed=0)
        assert base == dataset_fingerprint("a", scale=0.1, seed=0)
        assert base == dataset_fingerprint("a", seed=0, scale=0.1)  # kw order
        assert base != dataset_fingerprint("a", scale=0.2, seed=0)
        assert base != dataset_fingerprint("b", scale=0.1, seed=0)


class TestCorruptionRecovery:
    def test_torn_write_raises_dataset_cache_error(self, tmp_path):
        path = str(tmp_path / "ds.npz")
        with testing.FaultyWrites(
            testing.DATA_CACHE_WRITE, mode="truncate", fraction=0.4
        ) as fault:
            save_dataset(tiny_dataset(), path)
            assert fault.corrupted
        with pytest.raises(DatasetCacheError, match="unreadable"):
            load_dataset_file(path)

    def test_garbled_write_raises_dataset_cache_error(self, tmp_path):
        path = str(tmp_path / "ds.npz")
        with testing.FaultyWrites(
            testing.DATA_CACHE_WRITE, mode="garble", fraction=0.5
        ):
            save_dataset(tiny_dataset(), path)
        with pytest.raises(DatasetCacheError):
            load_dataset_file(path)

    def test_missing_file_keeps_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset_file(str(tmp_path / "absent.npz"))

    def test_cached_generate_deletes_and_regenerates(self, tmp_path):
        path = str(tmp_path / "cache.npz")
        calls = []

        def generator():
            calls.append(1)
            return tiny_dataset()

        with testing.FaultyWrites(
            testing.DATA_CACHE_WRITE, mode="truncate", fraction=0.3
        ):
            cached_generate(generator, path)  # lands corrupt on disk
        with pytest.warns(RuntimeWarning, match="regenerating"):
            recovered = cached_generate(generator, path)
        assert len(calls) == 2
        tiny = tiny_dataset()
        np.testing.assert_array_equal(recovered.user_ids, tiny.user_ids)
        # The rewrite healed the cache: the next call is a clean hit.
        cached_generate(generator, path)
        assert len(calls) == 2

    def test_atomic_write_leaves_no_tmp_file(self, tmp_path):
        save_dataset(tiny_dataset(), str(tmp_path / "ds.npz"))
        leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        assert leftovers == []
