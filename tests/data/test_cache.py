"""Tests for dataset caching."""

from __future__ import annotations

import numpy as np

from repro.data import (
    cached_generate,
    generate_preset,
    load_dataset_file,
    save_dataset,
)

from ..helpers import tiny_dataset


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        tiny = tiny_dataset()
        path = str(tmp_path / "ds.npz")
        save_dataset(tiny, path)
        loaded = load_dataset_file(path)
        assert loaded.name == tiny.name
        np.testing.assert_array_equal(loaded.user_ids, tiny.user_ids)
        np.testing.assert_array_equal(loaded.tag_ids, tiny.tag_ids)
        assert loaded.num_users == tiny.num_users

    def test_extension_appended(self, tmp_path):
        tiny = tiny_dataset()
        base = str(tmp_path / "nosuffix")
        save_dataset(tiny, base)
        loaded = load_dataset_file(base)
        assert loaded.num_interactions == tiny.num_interactions


class TestCachedGenerate:
    def test_miss_then_hit(self, tmp_path):
        path = str(tmp_path / "cache.npz")
        calls = []

        def generator(name, scale, seed):
            calls.append(1)
            return generate_preset(name, scale=scale, seed=seed)

        first = cached_generate(generator, path, "hetrec-del", scale=0.03, seed=0)
        second = cached_generate(generator, path, "hetrec-del", scale=0.03, seed=0)
        assert len(calls) == 1  # second call served from disk
        np.testing.assert_array_equal(first.user_ids, second.user_ids)
