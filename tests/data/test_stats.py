"""Tests for Table I statistics computation."""

from __future__ import annotations

import pytest

from repro.data import compute_statistics

from ..helpers import tiny_dataset


class TestStatistics:
    def test_counts(self, tiny):
        stats = compute_statistics(tiny)
        assert stats.num_users == 4
        assert stats.num_items == 6
        assert stats.num_tags == 5
        assert stats.num_interactions == 10
        assert stats.num_tag_assignments == 8

    def test_densities_percent(self, tiny):
        stats = compute_statistics(tiny)
        assert stats.interaction_density_pct == pytest.approx(100 * 10 / 24)
        assert stats.tag_density_pct == pytest.approx(100 * 8 / 30)

    def test_average_degrees_follow_paper_convention(self, tiny):
        stats = compute_statistics(tiny)
        assert stats.interaction_avg_degree == pytest.approx(10 / 4)
        assert stats.tag_avg_degree == pytest.approx(8 / 6)

    def test_as_row_keys(self, tiny):
        row = compute_statistics(tiny).as_row()
        assert set(row) == {
            "#User", "#Item", "#Tag", "#UI", "UI Density",
            "UI Avg. degree", "#IT", "IT Density", "IT Avg. degree",
        }
        assert row["UI Density"].endswith("%")
