"""Tests for the calibrated synthetic generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    DATASET_ORDER,
    PAPER_STATISTICS,
    PRESETS,
    SyntheticConfig,
    generate,
    generate_preset,
    preset,
)


class TestPresets:
    def test_all_seven_datasets_present(self):
        assert len(DATASET_ORDER) == 7
        assert set(DATASET_ORDER) == set(PRESETS) == set(PAPER_STATISTICS)

    def test_preset_lookup_case_insensitive(self):
        assert preset("HetRec-MV").name == "hetrec-mv"

    def test_unknown_preset_raises_with_choices(self):
        with pytest.raises(KeyError, match="available"):
            preset("no-such-dataset")

    def test_preset_entity_counts_match_table1(self):
        for name in DATASET_ORDER:
            config = preset(name)
            stats = PAPER_STATISTICS[name]
            assert config.num_users == stats["users"]
            assert config.num_items == stats["items"]
            assert config.num_tags == stats["tags"]

    def test_scaled_shrinks_counts(self):
        config = preset("yelp-tag", scale=0.1)
        assert config.num_users == int(39856 * 0.1)
        assert config.mean_user_degree == PRESETS["yelp-tag"].mean_user_degree

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            preset("yelp-tag").scaled(0.0)

    def test_scaled_enforces_minimums(self):
        config = preset("hetrec-fm").scaled(1e-6)
        assert config.num_users >= 30
        assert config.num_tags >= config.num_factors * 4


class TestGeneration:
    def test_deterministic_given_seed(self):
        config = SyntheticConfig("t", 50, 80, 40, mean_user_degree=8)
        a = generate(config, seed=3)
        b = generate(config, seed=3)
        np.testing.assert_array_equal(a.user_ids, b.user_ids)
        np.testing.assert_array_equal(a.tag_ids, b.tag_ids)

    def test_different_seeds_differ(self):
        config = SyntheticConfig("t", 50, 80, 40, mean_user_degree=8)
        a = generate(config, seed=3)
        b = generate(config, seed=4)
        assert not np.array_equal(a.item_ids, b.item_ids)

    def test_every_user_has_interactions(self):
        ds = generate(SyntheticConfig("t", 40, 60, 32, mean_user_degree=5), seed=0)
        assert np.all(ds.user_degrees() >= 1)

    def test_every_item_has_tags(self):
        ds = generate(SyntheticConfig("t", 40, 60, 32, mean_user_degree=5), seed=0)
        assert np.all(np.bincount(ds.tag_item_ids, minlength=ds.num_items) >= 1)

    def test_no_duplicate_tags_per_item(self):
        ds = generate(SyntheticConfig("t", 40, 60, 32), seed=0)
        for item in range(ds.num_items):
            tags = ds.tags_of_item()[item]
            assert len(tags) == len(np.unique(tags))

    def test_mean_degree_near_target(self):
        config = SyntheticConfig("t", 300, 400, 64, mean_user_degree=20)
        ds = generate(config, seed=1)
        mean_degree = ds.num_interactions / ds.num_users
        assert 14 < mean_degree < 28  # lognormal with sigma=0.8

    def test_popularity_is_long_tailed(self):
        config = SyntheticConfig("t", 400, 500, 64, mean_user_degree=25)
        ds = generate(config, seed=1)
        degrees = np.sort(ds.item_degrees())[::-1]
        top_share = degrees[: len(degrees) // 10].sum() / degrees.sum()
        assert top_share > 0.3  # top 10% of items draw >30% of interactions


class TestGroundTruth:
    def test_ground_truth_shapes(self):
        config = SyntheticConfig("t", 40, 60, 32, num_factors=4)
        ds, truth = generate(config, seed=0, return_ground_truth=True)
        assert truth.user_preferences.shape == (40, 4)
        assert truth.item_factors.shape == (60,)
        assert truth.tag_factors.shape == (32,)
        np.testing.assert_allclose(truth.user_preferences.sum(axis=1), 1.0)

    def test_tags_concentrate_on_item_factor(self):
        """The planted structure: an item's tags mostly share its factor."""
        config = SyntheticConfig(
            "t", 60, 120, 48, num_factors=4, tag_offtopic=0.1, mean_item_tags=5
        )
        ds, truth = generate(config, seed=0, return_ground_truth=True)
        matches = 0
        total = 0
        for item in range(ds.num_items):
            for tag in ds.tags_of_item()[item]:
                matches += truth.tag_factors[tag] == truth.item_factors[item]
                total += 1
        assert matches / total > 0.7

    def test_interactions_follow_preferences(self):
        """Users interact mostly with items of their preferred factors."""
        config = SyntheticConfig(
            "t", 80, 150, 48, num_factors=4, user_concentration=0.1,
            noise=0.0, mean_user_degree=12,
        )
        ds, truth = generate(config, seed=0, return_ground_truth=True)
        aligned = 0
        total = 0
        for u, v in zip(ds.user_ids, ds.item_ids):
            # Item factor within the user's top-2 preferred factors?
            top2 = np.argsort(truth.user_preferences[u])[-2:]
            aligned += truth.item_factors[v] in top2
            total += 1
        assert aligned / total > 0.6

    def test_generate_preset_round_trip(self):
        ds = generate_preset("hetrec-del", scale=0.05, seed=0)
        assert ds.name == "hetrec-del"
        assert ds.num_users == max(int(1274 * 0.05), 30)
