"""Tests for the 7:1:2 splitting protocol."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import generate_preset, split_dataset, SyntheticConfig, generate


class TestSplitBasics:
    def test_ratios_must_sum_to_one(self, small_dataset):
        with pytest.raises(ValueError, match="sum to 1"):
            split_dataset(small_dataset, ratios=(0.5, 0.5, 0.5))

    def test_negative_ratio_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            split_dataset(small_dataset, ratios=(1.2, -0.1, -0.1))

    def test_parts_are_disjoint_per_user(self, small_split):
        train_pairs = set(zip(small_split.train.user_ids, small_split.train.item_ids))
        test_pairs = set(zip(small_split.test.user_ids, small_split.test.item_ids))
        valid_pairs = set(zip(small_split.valid.user_ids, small_split.valid.item_ids))
        assert not train_pairs & test_pairs
        assert not train_pairs & valid_pairs
        assert not valid_pairs & test_pairs

    def test_union_covers_all_unique_pairs(self, small_dataset, small_split):
        all_pairs = set(zip(small_dataset.user_ids, small_dataset.item_ids))
        split_pairs = (
            set(zip(small_split.train.user_ids, small_split.train.item_ids))
            | set(zip(small_split.valid.user_ids, small_split.valid.item_ids))
            | set(zip(small_split.test.user_ids, small_split.test.item_ids))
        )
        assert split_pairs == all_pairs

    def test_every_user_keeps_training_item(self, small_dataset, small_split):
        active = np.unique(small_dataset.user_ids)
        train_degrees = small_split.train.user_degrees()
        assert np.all(train_degrees[active] >= 1)

    def test_ratio_roughly_respected(self, small_dataset, small_split):
        total = small_dataset.num_interactions
        train_frac = small_split.train.num_interactions / total
        test_frac = small_split.test.num_interactions / total
        assert 0.6 < train_frac < 0.8
        assert 0.1 < test_frac < 0.3

    def test_deterministic_per_seed(self, small_dataset):
        a = split_dataset(small_dataset, seed=5)
        b = split_dataset(small_dataset, seed=5)
        np.testing.assert_array_equal(a.train.item_ids, b.train.item_ids)

    def test_different_seeds_differ(self, small_dataset):
        a = split_dataset(small_dataset, seed=5)
        b = split_dataset(small_dataset, seed=6)
        assert not np.array_equal(a.train.item_ids, b.train.item_ids)

    def test_tags_shared_across_parts(self, small_dataset, small_split):
        for part in (small_split.train, small_split.valid, small_split.test):
            assert part.num_tag_assignments == small_dataset.num_tag_assignments


class TestSplitEdgeCases:
    def test_user_with_one_item_goes_to_train(self):
        ds = generate(
            SyntheticConfig("t", 30, 50, 32, mean_user_degree=1.2,
                            degree_sigma=0.1),
            seed=0,
        )
        split = split_dataset(ds, seed=1)
        # Single-interaction users keep their item in train.
        singles = np.where(ds.user_degrees() == 1)[0]
        for user in singles:
            assert split.train.user_degrees()[user] == 1

    @given(st.integers(0, 5))
    @settings(max_examples=5, deadline=None)
    def test_split_property_disjoint(self, seed):
        ds = generate(SyntheticConfig("t", 30, 60, 32, mean_user_degree=8), seed=9)
        split = split_dataset(ds, seed=seed)
        train = set(zip(split.train.user_ids, split.train.item_ids))
        test = set(zip(split.test.user_ids, split.test.item_ids))
        assert not train & test
