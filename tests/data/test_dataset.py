"""Tests for the TagRecDataset container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import TagRecDataset

from ..helpers import tiny_dataset


class TestValidation:
    def test_valid_dataset_constructs(self, tiny):
        assert tiny.num_interactions == 10
        assert tiny.num_tag_assignments == 8

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            TagRecDataset(
                num_users=2, num_items=2, num_tags=2,
                user_ids=np.array([0]), item_ids=np.array([0, 1]),
                tag_item_ids=np.array([]), tag_ids=np.array([]),
            )

    def test_out_of_range_user_rejected(self):
        with pytest.raises(ValueError, match="user_ids"):
            TagRecDataset(
                num_users=2, num_items=2, num_tags=2,
                user_ids=np.array([5]), item_ids=np.array([0]),
                tag_item_ids=np.array([]), tag_ids=np.array([]),
            )

    def test_out_of_range_tag_rejected(self):
        with pytest.raises(ValueError, match="tag_ids"):
            TagRecDataset(
                num_users=2, num_items=2, num_tags=2,
                user_ids=np.array([0]), item_ids=np.array([0]),
                tag_item_ids=np.array([0]), tag_ids=np.array([7]),
            )

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            TagRecDataset(
                num_users=2, num_items=2, num_tags=2,
                user_ids=np.array([-1]), item_ids=np.array([0]),
                tag_item_ids=np.array([]), tag_ids=np.array([]),
            )


class TestDensities:
    def test_interaction_density(self, tiny):
        assert tiny.interaction_density() == pytest.approx(10 / 24)

    def test_tag_density(self, tiny):
        assert tiny.tag_density() == pytest.approx(8 / 30)


class TestSparseViews:
    def test_interaction_matrix_shape_binary(self, tiny):
        mat = tiny.interaction_matrix()
        assert mat.shape == (4, 6)
        assert set(np.unique(mat.data)) == {1.0}

    def test_tag_matrix_shape(self, tiny):
        assert tiny.tag_matrix().shape == (6, 5)

    def test_matrices_cached(self, tiny):
        assert tiny.interaction_matrix() is tiny.interaction_matrix()

    def test_duplicates_collapsed(self):
        ds = TagRecDataset(
            num_users=1, num_items=1, num_tags=1,
            user_ids=np.array([0, 0]), item_ids=np.array([0, 0]),
            tag_item_ids=np.array([]), tag_ids=np.array([]),
        )
        assert ds.interaction_matrix().nnz == 1
        assert ds.interaction_matrix()[0, 0] == 1.0


class TestAdjacency:
    def test_items_of_user(self, tiny):
        items = tiny.items_of_user()
        assert sorted(items[0].tolist()) == [0, 1, 2]
        assert sorted(items[3].tolist()) == [1, 4, 5]

    def test_users_of_item(self, tiny):
        users = tiny.users_of_item()
        assert sorted(users[0].tolist()) == [0, 1, 2]
        assert sorted(users[5].tolist()) == [3]

    def test_tags_of_item_includes_empty(self, tiny):
        tags = tiny.tags_of_item()
        assert sorted(tags[0].tolist()) == [0, 1]
        assert len(tags[5]) == 0  # item 5 has no tags

    def test_degrees_consistent(self, tiny):
        assert tiny.item_degrees().sum() == tiny.num_interactions
        assert tiny.user_degrees().sum() == tiny.num_interactions
        assert tiny.tag_degrees().sum() == tiny.num_tag_assignments


class TestWithInteractions:
    def test_replaces_interactions_keeps_tags(self, tiny):
        derived = tiny.with_interactions(
            np.array([0]), np.array([0]), name="derived"
        )
        assert derived.num_interactions == 1
        assert derived.num_tag_assignments == tiny.num_tag_assignments
        assert derived.name == "derived"

    def test_preserves_entity_counts(self, tiny):
        derived = tiny.with_interactions(np.array([3]), np.array([5]))
        assert derived.num_users == tiny.num_users
        assert derived.num_items == tiny.num_items

    def test_fresh_cache(self, tiny):
        tiny.interaction_matrix()
        derived = tiny.with_interactions(np.array([0]), np.array([0]))
        assert derived.interaction_matrix().nnz == 1
