"""Tests for the non-contrastive (BYOL-style) alignment variant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IMCAT, IMCATConfig, IntentAlignment
from repro.models import BPRMF
from repro.nn import Tensor


def make_module(objective="byol", dim=8, k=2):
    config = IMCATConfig(num_intents=k, alignment_objective=objective)
    return IntentAlignment(dim, config, np.random.default_rng(0)), config


def make_inputs(rng, batch=4, dim=8, k=2):
    return dict(
        item_batch=np.arange(batch),
        user_aggregation=Tensor(rng.normal(size=(batch, dim)), requires_grad=True),
        item_embeddings=Tensor(rng.normal(size=(batch, dim)), requires_grad=True),
        tag_aggregation_all=Tensor(
            rng.normal(size=(batch * k, dim)), requires_grad=True
        ),
        tag_counts=np.ones((batch, k), dtype=int),
    )


class TestConfig:
    def test_invalid_objective_rejected(self):
        with pytest.raises(ValueError, match="alignment_objective"):
            IMCATConfig(alignment_objective="simsiam")

    def test_byol_adds_predictors(self):
        module, _ = make_module("byol")
        names = {name for name, _ in module.named_parameters()}
        assert any("predictor" in name for name in names)

    def test_infonce_has_no_predictors(self):
        module, _ = make_module("infonce")
        names = {name for name, _ in module.named_parameters()}
        assert not any("predictor" in name for name in names)


class TestByolLoss:
    def test_finite_scalar(self, rng):
        module, _ = make_module()
        loss = module.alignment_loss(**make_inputs(rng))
        assert loss.size == 1
        assert np.isfinite(loss.item())

    def test_nonnegative(self, rng):
        # 2 - 2cos is in [0, 4] per pair; weighted sums stay >= 0.
        module, _ = make_module()
        loss = module.alignment_loss(**make_inputs(rng))
        assert loss.item() >= 0.0

    def test_gradients_flow_to_online_views(self, rng):
        module, _ = make_module()
        inputs = make_inputs(rng)
        module.alignment_loss(**inputs).backward()
        assert inputs["user_aggregation"].grad is not None
        assert inputs["item_embeddings"].grad is not None

    def test_loss_differs_from_infonce(self, rng):
        byol, _ = make_module("byol")
        contrastive, _ = make_module("infonce")
        a = byol.alignment_loss(**make_inputs(np.random.default_rng(1))).item()
        b = contrastive.alignment_loss(**make_inputs(np.random.default_rng(1))).item()
        assert a != pytest.approx(b)

    def test_minimisation_aligns_views(self, rng):
        """Gradient steps on the BYOL loss increase view agreement."""
        from repro.nn import Adam
        from repro.nn import functional as F

        module, _ = make_module()
        inputs = make_inputs(np.random.default_rng(2))
        params = (
            [inputs["user_aggregation"], inputs["item_embeddings"],
             inputs["tag_aggregation_all"]]
            + list(module.parameters())
        )
        optimizer = Adam(params, lr=0.02)
        first = module.alignment_loss(**inputs).item()
        for _ in range(30):
            loss = module.alignment_loss(**inputs)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert module.alignment_loss(**inputs).item() < first


class TestByolEndToEnd:
    def test_imcat_trains_with_byol(self, small_dataset, small_split, rng):
        backbone = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 16,
            np.random.default_rng(0),
        )
        model = IMCAT(
            backbone, small_dataset, small_split.train,
            IMCATConfig(num_intents=4, alignment_objective="byol"),
            rng=np.random.default_rng(0),
        )
        model.refresh_clusters(rng)
        loss = model.alignment_loss(np.arange(16), rng)
        assert np.isfinite(loss.item())
        loss.backward()
        assert model.tag_embedding.weight.grad is not None
