"""Tests for IMCATConfig validation and ablation helpers."""

from __future__ import annotations

import pytest

from repro.core import IMCATConfig


class TestValidation:
    def test_defaults_valid(self):
        config = IMCATConfig()
        assert config.num_intents == 4
        assert config.use_isa and config.use_nlt and config.use_alignment

    def test_invalid_intents(self):
        with pytest.raises(ValueError):
            IMCATConfig(num_intents=0)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            IMCATConfig(delta=1.5)

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            IMCATConfig(tau=0.0)

    def test_invalid_eta(self):
        with pytest.raises(ValueError):
            IMCATConfig(eta=-1.0)

    @pytest.mark.parametrize("name", ["alpha", "beta", "gamma", "independence_weight"])
    def test_negative_weights_rejected(self, name):
        with pytest.raises(ValueError, match=name):
            IMCATConfig(**{name: -0.1})

    def test_frozen(self):
        with pytest.raises(Exception):
            IMCATConfig().num_intents = 8


class TestAblations:
    def test_without_uit(self):
        config = IMCATConfig().without_uit()
        assert not config.use_alignment

    def test_without_ut(self):
        config = IMCATConfig().without_ut()
        assert not config.align_tag
        assert config.align_item

    def test_without_ui(self):
        config = IMCATConfig().without_ui()
        assert not config.align_item
        assert config.align_tag

    def test_without_nlt(self):
        config = IMCATConfig().without_nlt()
        assert not config.use_nlt
        assert config.use_alignment

    def test_ablated_generic(self):
        config = IMCATConfig().ablated(num_intents=8, delta=0.5)
        assert config.num_intents == 8
        assert config.delta == 0.5
        # Original untouched (frozen dataclass).
        assert IMCATConfig().num_intents == 4
