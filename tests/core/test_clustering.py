"""Tests for the self-supervised tag clustering (Eqs. 4-6)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TagClustering, kmeans
from repro.nn import Adam, Tensor

from ..helpers import assert_gradcheck


class TestSoftAssignments:
    def test_rows_are_distributions(self, rng):
        clustering = TagClustering(4, 8, rng=rng)
        q = clustering.soft_assignments(Tensor(rng.normal(size=(10, 8))))
        assert np.all(q.data >= 0)
        np.testing.assert_allclose(q.data.sum(axis=1), 1.0)

    def test_closest_center_gets_highest_probability(self, rng):
        clustering = TagClustering(2, 4, rng=rng)
        clustering.centers.data[...] = np.array(
            [[0.0, 0.0, 0.0, 0.0], [10.0, 10.0, 10.0, 10.0]]
        )
        q = clustering.soft_assignments(Tensor(np.zeros((1, 4))))
        assert q.data[0, 0] > q.data[0, 1]

    def test_eta_controls_sharpness(self, rng):
        # Student-t kernel: as eta grows the tails lighten and the
        # assignment sharpens (eta -> inf approaches a Gaussian kernel).
        points = Tensor(rng.normal(size=(20, 4)) * 3)
        soft = TagClustering(3, 4, eta=0.5, rng=np.random.default_rng(1))
        sharp = TagClustering(3, 4, eta=100.0, rng=np.random.default_rng(1))
        q_soft = soft.soft_assignments(points).data
        q_sharp = sharp.soft_assignments(points).data
        assert q_sharp.max(axis=1).mean() > q_soft.max(axis=1).mean()

    def test_gradcheck(self, rng):
        clustering = TagClustering(3, 4, rng=rng)
        tags = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        w = rng.normal(size=(5, 3))
        assert_gradcheck(
            lambda: (clustering.soft_assignments(tags) * Tensor(w)).sum(),
            [tags, clustering.centers],
        )

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TagClustering(0, 4)
        with pytest.raises(ValueError):
            TagClustering(2, 4, eta=0.0)


class TestTargetDistribution:
    def test_rows_are_distributions(self, rng):
        q = rng.dirichlet(np.ones(4), size=10)
        target = TagClustering.target_distribution(q)
        np.testing.assert_allclose(target.sum(axis=1), 1.0)
        assert np.all(target >= 0)

    def test_sharpens_dominant_cluster(self):
        # Balanced cluster frequencies: squaring emphasises the mode.
        q = np.array([[0.9, 0.1], [0.1, 0.9]])
        target = TagClustering.target_distribution(q)
        assert target[0, 0] > 0.9
        assert target[1, 1] > 0.9

    def test_frequency_normalisation_counteracts_big_clusters(self):
        # Both rows favour cluster 0; the f_k division pushes the less
        # confident row toward the smaller cluster (Eq. 5's role).
        q = np.array([[0.9, 0.1], [0.6, 0.4]])
        target = TagClustering.target_distribution(q)
        assert target[1, 1] > 0.4

    def test_uniform_stays_uniform(self):
        q = np.full((5, 4), 0.25)
        target = TagClustering.target_distribution(q)
        np.testing.assert_allclose(target, 0.25)


class TestKLLoss:
    def test_nonnegative(self, rng):
        clustering = TagClustering(4, 8, rng=rng)
        loss = clustering.kl_loss(Tensor(rng.normal(size=(20, 8))))
        assert loss.item() >= -1e-9

    def test_minimisation_sharpens_assignments(self, rng):
        clustering = TagClustering(3, 4, rng=np.random.default_rng(0))
        tags = Tensor(np.random.default_rng(1).normal(size=(30, 4)), requires_grad=True)
        clustering.initialize_from(tags.data, np.random.default_rng(2))
        optimizer = Adam(
            list(clustering.parameters()) + [tags], lr=0.05
        )
        before = clustering.soft_assignments(tags).data.max(axis=1).mean()
        for _ in range(40):
            loss = clustering.kl_loss(tags)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        after = clustering.soft_assignments(tags).data.max(axis=1).mean()
        assert after > before  # cohesion increased

    def test_gradients_flow_to_centers_and_tags(self, rng):
        clustering = TagClustering(3, 4, rng=rng)
        tags = Tensor(rng.normal(size=(8, 4)), requires_grad=True)
        clustering.kl_loss(tags).backward()
        assert clustering.centers.grad is not None
        assert tags.grad is not None


class TestHardAssignments:
    def test_matches_argmax_of_q(self, rng):
        clustering = TagClustering(4, 6, rng=rng)
        tags = rng.normal(size=(15, 6))
        hard = clustering.hard_assignments(tags)
        q = clustering.soft_assignments(Tensor(tags)).data
        np.testing.assert_array_equal(hard, q.argmax(axis=1))

    def test_range(self, rng):
        clustering = TagClustering(4, 6, rng=rng)
        hard = clustering.hard_assignments(rng.normal(size=(15, 6)))
        assert hard.min() >= 0 and hard.max() < 4


class TestKMeans:
    def test_separable_clusters_recovered(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(30, 2)) + np.array([10, 10])
        b = rng.normal(size=(30, 2)) - np.array([10, 10])
        points = np.vstack([a, b])
        centers, labels = kmeans(points, 2, rng=rng)
        # Points in the same blob share a label.
        assert len(set(labels[:30])) == 1
        assert len(set(labels[30:])) == 1
        assert labels[0] != labels[30]

    def test_centers_shape(self, rng):
        centers, labels = kmeans(rng.normal(size=(50, 4)), 5, rng=rng)
        assert centers.shape == (5, 4)
        assert labels.shape == (50,)

    def test_more_clusters_than_points_padded(self, rng):
        centers, labels = kmeans(rng.normal(size=(3, 2)), 7, rng=rng)
        assert centers.shape == (7, 2)
        assert labels.max() < 3

    def test_empty_input_rejected(self, rng):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 2)), 2, rng=rng)

    def test_deterministic_given_rng_seed(self):
        points = np.random.default_rng(0).normal(size=(40, 3))
        c1, l1 = kmeans(points, 4, rng=np.random.default_rng(5))
        c2, l2 = kmeans(points, 4, rng=np.random.default_rng(5))
        np.testing.assert_allclose(c1, c2)
        np.testing.assert_array_equal(l1, l2)

    @given(st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_labels_index_nearest_center(self, k):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(25, 3))
        centers, labels = kmeans(points, k, rng=rng)
        distances = ((points[:, None, :] - centers[None, :k, :]) ** 2).sum(axis=2)
        np.testing.assert_array_equal(labels, distances.argmin(axis=1))


class TestInitializeFrom:
    def test_centers_set_from_kmeans(self, rng):
        clustering = TagClustering(3, 4, rng=rng)
        tags = rng.normal(size=(30, 4))
        clustering.initialize_from(tags, np.random.default_rng(0))
        expected, _ = kmeans(tags, 3, rng=np.random.default_rng(0))
        np.testing.assert_allclose(clustering.centers.data, expected)
