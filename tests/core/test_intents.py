"""Tests for IRM: intent views and the independence regulariser."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    independence_loss,
    intent_view,
    intent_views,
    split_intents,
    validate_intent_dims,
)
from repro.nn import Tensor

from ..helpers import assert_gradcheck


class TestValidation:
    def test_divisible(self):
        assert validate_intent_dims(64, 4) == 16

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            validate_intent_dims(64, 5)


class TestViews:
    def test_views_partition_embedding(self, rng):
        emb = Tensor(rng.normal(size=(3, 8)))
        views = intent_views(emb, 4)
        assert len(views) == 4
        reconstructed = np.concatenate([v.data for v in views], axis=1)
        np.testing.assert_allclose(reconstructed, emb.data)

    def test_single_view(self, rng):
        emb = Tensor(rng.normal(size=(3, 8)))
        view = intent_view(emb, 0, 1)
        np.testing.assert_allclose(view.data, emb.data)

    def test_view_gradient_routes_to_block(self, rng):
        emb = Tensor(rng.normal(size=(2, 8)), requires_grad=True)
        intent_view(emb, 1, 4).sum().backward()
        # Only columns 2-3 receive gradient.
        assert np.all(emb.grad[:, 2:4] == 1.0)
        assert np.all(emb.grad[:, :2] == 0.0)
        assert np.all(emb.grad[:, 4:] == 0.0)

    def test_split_intents_numpy(self, rng):
        array = rng.normal(size=(5, 12))
        blocks = split_intents(array, 3)
        assert blocks.shape == (5, 3, 4)
        np.testing.assert_allclose(blocks[:, 1, :], array[:, 4:8])


class TestIndependenceLoss:
    def test_single_intent_is_zero(self, rng):
        emb = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        assert independence_loss(emb, 1).item() == 0.0

    def test_orthogonal_blocks_give_zero(self):
        # Block 0 lives on axis 0, block 1 on axis 1: cosine is zero.
        emb = np.zeros((3, 4))
        emb[:, 0] = 1.0  # intent 0 -> [1, 0]
        emb[:, 3] = 1.0  # intent 1 -> [0, 1]
        loss = independence_loss(Tensor(emb), 2)
        assert loss.item() == pytest.approx(0.0, abs=1e-12)

    def test_identical_blocks_give_one(self):
        emb = np.ones((3, 4))
        loss = independence_loss(Tensor(emb), 2)
        assert loss.item() == pytest.approx(1.0)

    def test_gradcheck(self, rng):
        emb = Tensor(rng.normal(size=(3, 8)), requires_grad=True)
        assert_gradcheck(lambda: independence_loss(emb, 4), [emb])

    @given(st.integers(2, 4))
    @settings(max_examples=10, deadline=None)
    def test_loss_in_unit_interval(self, k):
        rng = np.random.default_rng(0)
        emb = Tensor(rng.normal(size=(5, k * 4)))
        value = independence_loss(emb, k).item()
        assert 0.0 <= value <= 1.0 + 1e-12

    def test_minimising_decorrelates(self):
        """Gradient descent on the loss makes blocks more orthogonal."""
        from repro.nn import Adam, Parameter

        rng = np.random.default_rng(0)
        emb = Parameter(rng.normal(size=(10, 8)) + 1.0)
        optimizer = Adam([emb], lr=0.05)
        first = independence_loss(emb, 2).item()
        for _ in range(50):
            loss = independence_loss(emb, 2)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert independence_loss(emb, 2).item() < first
