"""Bit-exact checkpoint/resume tests for both training loops.

The contract under test: training ``N`` epochs in one run and training
``n < N`` epochs, checkpointing, then resuming to ``N`` must produce the
*same bits* — parameters, Adam moments, RNG streams, eval history — and
this must survive simulated crashes mid-epoch and mid-checkpoint-write
(via the :mod:`repro.testing` fault harness).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import testing
from repro.ckpt import CheckpointError, CheckpointManager, checksum
from repro.core import IMCAT, IMCATConfig, IMCATTrainConfig, IMCATTrainer
from repro.data import generate_preset, split_dataset
from repro.models import BPRMF, TrainConfig, fit_bpr

EPOCHS = 6
HALT = 4  # epoch boundary the interrupted runs checkpoint/resume across


@pytest.fixture(scope="module")
def resume_split():
    dataset = generate_preset("hetrec-del", scale=0.03, seed=11)
    return dataset, split_dataset(dataset, seed=12)


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    testing.reset()


def make_bprmf(resume_split):
    dataset, _ = resume_split
    return BPRMF(dataset.num_users, dataset.num_items, 16, np.random.default_rng(3))


def make_imcat(resume_split):
    dataset, split = resume_split
    rng = np.random.default_rng(3)
    backbone = BPRMF(dataset.num_users, dataset.num_items, 16, rng)
    return IMCAT(
        backbone, dataset, split.train,
        IMCATConfig(num_intents=2, pretrain_epochs=2), rng=rng,
    )


def bpr_config(**overrides):
    return TrainConfig(batch_size=256, eval_every=2, seed=5, **overrides)


def imcat_config(**overrides):
    return IMCATTrainConfig(batch_size=256, eval_every=2, seed=5, **overrides)


def assert_states_equal(model_a, model_b):
    state_a, state_b = model_a.state_dict(), model_b.state_dict()
    assert sorted(state_a) == sorted(state_b)
    for name, array in state_a.items():
        np.testing.assert_array_equal(
            array, state_b[name], err_msg=f"parameter {name} diverged"
        )


def assert_adam_states_equal(state_a, state_b):
    assert state_a["step"] == state_b["step"]
    for key in ("m", "v"):
        for moment_a, moment_b in zip(state_a[key], state_b[key]):
            np.testing.assert_array_equal(moment_a, moment_b)


class TestBitExactResumeBPR:
    def test_resume_matches_uninterrupted(self, resume_split, tmp_path):
        _, split = resume_split
        full_model = make_bprmf(resume_split)
        full = fit_bpr(full_model, split, bpr_config(epochs=EPOCHS))

        part_model = make_bprmf(resume_split)
        fit_bpr(
            part_model, split,
            bpr_config(epochs=HALT, checkpoint_dir=str(tmp_path),
                       checkpoint_every=2),
        )
        resumed_model = make_bprmf(resume_split)
        resumed = fit_bpr(
            resumed_model, split,
            bpr_config(epochs=EPOCHS, checkpoint_dir=str(tmp_path),
                       resume_from="auto"),
        )
        assert_states_equal(full_model, resumed_model)
        assert resumed.best_metric == full.best_metric
        assert resumed.best_epoch == full.best_epoch
        assert resumed.epochs_run == full.epochs_run
        assert resumed.history == full.history

    def test_adam_moments_survive_resume(self, resume_split, tmp_path):
        _, split = resume_split
        # The final-epoch snapshots of an uninterrupted and a resumed run
        # must agree on the optimizer moments, not just the parameters.
        full_dir, resumed_dir = tmp_path / "full", tmp_path / "resumed"
        fit_bpr(
            make_bprmf(resume_split), split,
            bpr_config(epochs=EPOCHS, checkpoint_dir=str(full_dir),
                       checkpoint_every=EPOCHS),
        )
        fit_bpr(
            make_bprmf(resume_split), split,
            bpr_config(epochs=HALT, checkpoint_dir=str(resumed_dir),
                       checkpoint_every=2),
        )
        fit_bpr(
            make_bprmf(resume_split), split,
            bpr_config(epochs=EPOCHS, checkpoint_dir=str(resumed_dir),
                       checkpoint_every=EPOCHS, resume_from="auto"),
        )
        full_ckpt = CheckpointManager(str(full_dir)).load_latest()
        resumed_ckpt = CheckpointManager(str(resumed_dir)).load_latest()
        assert full_ckpt.step == resumed_ckpt.step
        assert_adam_states_equal(
            full_ckpt.state["optimizer"], resumed_ckpt.state["optimizer"]
        )
        assert full_ckpt.state["rng"] == resumed_ckpt.state["rng"]

    def test_scheduler_position_survives_resume(self, resume_split, tmp_path):
        # The cosine horizon is config.epochs, so the interrupted run
        # must share the full budget and die mid-run (crash point) for
        # the LR trajectories to be comparable.
        _, split = resume_split
        full_model = make_bprmf(resume_split)
        fit_bpr(
            full_model, split, bpr_config(epochs=EPOCHS, lr_schedule="cosine")
        )
        crash_model = make_bprmf(resume_split)
        with pytest.raises(testing.SimulatedCrash):
            with testing.CrashPoint(testing.TRAINER_EPOCH, at=HALT):
                fit_bpr(
                    crash_model, split,
                    bpr_config(epochs=EPOCHS, lr_schedule="cosine",
                               checkpoint_dir=str(tmp_path)),
                )
        resumed_model = make_bprmf(resume_split)
        fit_bpr(
            resumed_model, split,
            bpr_config(epochs=EPOCHS, lr_schedule="cosine",
                       checkpoint_dir=str(tmp_path), resume_from="auto"),
        )
        assert_states_equal(full_model, resumed_model)

    def test_config_mismatch_rejected(self, resume_split, tmp_path):
        _, split = resume_split
        fit_bpr(
            make_bprmf(resume_split), split,
            bpr_config(epochs=2, checkpoint_dir=str(tmp_path)),
        )
        with pytest.raises(CheckpointError, match="mismatch"):
            fit_bpr(
                make_bprmf(resume_split), split,
                bpr_config(epochs=EPOCHS, learning_rate=5e-3,
                           checkpoint_dir=str(tmp_path), resume_from="auto"),
            )

    def test_auto_resume_on_fresh_directory_trains_from_scratch(
        self, resume_split, tmp_path
    ):
        _, split = resume_split
        result = fit_bpr(
            make_bprmf(resume_split), split,
            bpr_config(epochs=2, checkpoint_dir=str(tmp_path),
                       resume_from="auto"),
        )
        assert result.epochs_run == 2


class TestBitExactResumeSSL:
    def test_sgl_augmentation_rng_survives_resume(self, resume_split, tmp_path):
        # SGL re-samples graph views from an internal RNG every epoch;
        # the checkpoint must carry that RNG (model extra state) or the
        # resumed run diverges through the SSL loss.
        from repro.bench import MODEL_BUILDERS

        _, split = resume_split

        def make_sgl():
            return MODEL_BUILDERS["SGL"](
                resume_split[0], split, 16, np.random.default_rng(3)
            )

        full_model = make_sgl()
        full = fit_bpr(full_model, split, bpr_config(epochs=EPOCHS))
        part_model = make_sgl()
        fit_bpr(
            part_model, split,
            bpr_config(epochs=HALT, checkpoint_dir=str(tmp_path)),
        )
        resumed_model = make_sgl()
        resumed = fit_bpr(
            resumed_model, split,
            bpr_config(epochs=EPOCHS, checkpoint_dir=str(tmp_path),
                       resume_from="auto"),
        )
        assert_states_equal(full_model, resumed_model)
        assert resumed.history == full.history


class TestBitExactResumeIMCAT:
    def test_resume_matches_uninterrupted(self, resume_split, tmp_path):
        _, split = resume_split
        full_model = make_imcat(resume_split)
        full = IMCATTrainer(full_model, split, imcat_config(epochs=EPOCHS)).fit()

        part_model = make_imcat(resume_split)
        IMCATTrainer(
            part_model, split,
            imcat_config(epochs=HALT, checkpoint_dir=str(tmp_path),
                         checkpoint_every=2),
        ).fit()
        resumed_model = make_imcat(resume_split)
        resumed = IMCATTrainer(
            resumed_model, split,
            imcat_config(epochs=EPOCHS, checkpoint_dir=str(tmp_path),
                         resume_from="auto"),
        ).fit()
        # HALT=4 > pretrain_epochs=2, so the resume crosses back into an
        # active clustering phase: memberships, KL target, and the ISA
        # index must all be restored, not recomputed.
        assert_states_equal(full_model, resumed_model)
        np.testing.assert_array_equal(
            full_model.tag_clusters, resumed_model.tag_clusters
        )
        assert resumed_model.clustering_active == full_model.clustering_active
        assert resumed.best_metric == full.best_metric
        assert resumed.history == full.history

    def test_resume_from_pretrain_phase(self, resume_split, tmp_path):
        _, split = resume_split
        full_model = make_imcat(resume_split)
        full = IMCATTrainer(full_model, split, imcat_config(epochs=EPOCHS)).fit()
        part_model = make_imcat(resume_split)
        IMCATTrainer(
            part_model, split,
            imcat_config(epochs=2, checkpoint_dir=str(tmp_path)),
        ).fit()
        assert not part_model.clustering_active
        resumed_model = make_imcat(resume_split)
        resumed = IMCATTrainer(
            resumed_model, split,
            imcat_config(epochs=EPOCHS, checkpoint_dir=str(tmp_path),
                         resume_from="auto"),
        ).fit()
        # Resuming at the phase boundary must replay K-means warm-start
        # identically (same RNG stream position).
        assert_states_equal(full_model, resumed_model)
        assert resumed.history == full.history


class TestFaultInjection:
    def test_crash_mid_epoch_then_resume_is_bit_exact(
        self, resume_split, tmp_path
    ):
        _, split = resume_split
        full_model = make_bprmf(resume_split)
        full = fit_bpr(full_model, split, bpr_config(epochs=EPOCHS))

        crash_model = make_bprmf(resume_split)
        with pytest.raises(testing.SimulatedCrash):
            with testing.CrashPoint(testing.TRAINER_STEP, at=5):
                fit_bpr(
                    crash_model, split,
                    bpr_config(epochs=EPOCHS, checkpoint_dir=str(tmp_path)),
                )
        resumed_model = make_bprmf(resume_split)
        resumed = fit_bpr(
            resumed_model, split,
            bpr_config(epochs=EPOCHS, checkpoint_dir=str(tmp_path),
                       resume_from="auto"),
        )
        assert_states_equal(full_model, resumed_model)
        assert resumed.history == full.history

    def test_crash_mid_checkpoint_write_manifest_stays_consistent(
        self, resume_split, tmp_path
    ):
        _, split = resume_split
        full_model = make_bprmf(resume_split)
        full = fit_bpr(full_model, split, bpr_config(epochs=EPOCHS))

        crash_model = make_bprmf(resume_split)
        with pytest.raises(testing.SimulatedCrash):
            # Odd replace counts hit a payload write (payload and
            # manifest replaces alternate), so this dies with the third
            # snapshot half-written.
            with testing.CrashPoint(testing.CKPT_BEFORE_REPLACE, at=5):
                fit_bpr(
                    crash_model, split,
                    bpr_config(epochs=EPOCHS, checkpoint_dir=str(tmp_path)),
                )
        # The manifest must reference only intact, checksum-valid files.
        manager = CheckpointManager(str(tmp_path))
        entries = manager.entries()
        assert entries, "crash run should have persisted earlier snapshots"
        for entry in entries:
            path = tmp_path / entry["file"]
            assert path.exists()
            with open(path, "rb") as handle:
                assert checksum(handle.read()) == entry["sha256"]

        resumed_model = make_bprmf(resume_split)
        resumed = fit_bpr(
            resumed_model, split,
            bpr_config(epochs=EPOCHS, checkpoint_dir=str(tmp_path),
                       resume_from="auto"),
        )
        assert_states_equal(full_model, resumed_model)
        assert resumed.history == full.history

    def test_garbled_checkpoint_falls_back_with_warning(
        self, resume_split, tmp_path
    ):
        _, split = resume_split
        full_model = make_bprmf(resume_split)
        full = fit_bpr(full_model, split, bpr_config(epochs=EPOCHS))

        part_model = make_bprmf(resume_split)
        with testing.FaultyWrites(
            testing.CKPT_PAYLOAD_WRITE, mode="garble", at=HALT
        ) as fault:
            fit_bpr(
                part_model, split,
                bpr_config(epochs=HALT, checkpoint_dir=str(tmp_path),
                           keep_last=HALT),
            )
        assert fault.corrupted, "the final snapshot write must be garbled"

        resumed_model = make_bprmf(resume_split)
        with pytest.warns(RuntimeWarning, match="checksum"):
            resumed = fit_bpr(
                resumed_model, split,
                bpr_config(epochs=EPOCHS, checkpoint_dir=str(tmp_path),
                           keep_last=HALT, resume_from="auto"),
            )
        # Fallback restarts one epoch earlier (epoch HALT-1) yet still
        # reproduces the uninterrupted run bit-exactly.
        assert_states_equal(full_model, resumed_model)
        assert resumed.history == full.history

    def test_truncated_checkpoint_falls_back(self, resume_split, tmp_path):
        _, split = resume_split
        part_model = make_bprmf(resume_split)
        with testing.FaultyWrites(
            testing.CKPT_PAYLOAD_WRITE, mode="truncate", at=HALT, fraction=0.3
        ):
            fit_bpr(
                part_model, split,
                bpr_config(epochs=HALT, checkpoint_dir=str(tmp_path),
                           keep_last=HALT),
            )
        with pytest.warns(RuntimeWarning, match="checksum"):
            found = CheckpointManager(str(tmp_path), keep_last=HALT).load_latest()
        assert found is not None
        assert found.state["epoch"] == HALT - 1

    def test_imcat_crash_mid_checkpoint_write_recovers(
        self, resume_split, tmp_path
    ):
        _, split = resume_split
        full_model = make_imcat(resume_split)
        full = IMCATTrainer(full_model, split, imcat_config(epochs=EPOCHS)).fit()

        crash_model = make_imcat(resume_split)
        with pytest.raises(testing.SimulatedCrash):
            with testing.CrashPoint(testing.CKPT_BEFORE_REPLACE, at=7):
                IMCATTrainer(
                    crash_model, split,
                    imcat_config(epochs=EPOCHS, checkpoint_dir=str(tmp_path)),
                ).fit()
        manager = CheckpointManager(str(tmp_path))
        for entry in manager.entries():
            with open(tmp_path / entry["file"], "rb") as handle:
                assert checksum(handle.read()) == entry["sha256"]
        resumed_model = make_imcat(resume_split)
        resumed = IMCATTrainer(
            resumed_model, split,
            imcat_config(epochs=EPOCHS, checkpoint_dir=str(tmp_path),
                         resume_from="auto"),
        ).fit()
        assert_states_equal(full_model, resumed_model)
        np.testing.assert_array_equal(
            full_model.tag_clusters, resumed_model.tag_clusters
        )
        assert resumed.best_metric == full.best_metric
        assert resumed.history == full.history

    def test_crash_leaves_no_stray_tmp_after_restart(
        self, resume_split, tmp_path
    ):
        _, split = resume_split
        with pytest.raises(testing.SimulatedCrash):
            with testing.CrashPoint(testing.CKPT_BEFORE_REPLACE, at=3):
                fit_bpr(
                    make_bprmf(resume_split), split,
                    bpr_config(epochs=EPOCHS, checkpoint_dir=str(tmp_path)),
                )
        assert any(name.endswith(".tmp") for name in os.listdir(tmp_path))
        CheckpointManager(str(tmp_path))  # restart cleans the torn write
        assert not any(name.endswith(".tmp") for name in os.listdir(tmp_path))
