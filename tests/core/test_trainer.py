"""Tests for the two-phase IMCAT trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IMCAT, IMCATConfig, IMCATTrainConfig, IMCATTrainer
from repro.eval import Evaluator
from repro.models import BPRMF


def make_trainer(dataset, split, epochs=8, pretrain=3, **config_kw):
    rng = np.random.default_rng(0)
    backbone = BPRMF(dataset.num_users, dataset.num_items, 16, rng)
    config = IMCATConfig(
        num_intents=4, pretrain_epochs=pretrain, align_batch_size=32,
        cluster_refresh_every=5, **config_kw,
    )
    model = IMCAT(backbone, dataset, split.train, config, rng=rng)
    trainer = IMCATTrainer(
        model, split,
        IMCATTrainConfig(epochs=epochs, batch_size=128, eval_every=2, patience=10),
    )
    return model, trainer


class TestPhases:
    def test_clustering_activates_after_pretraining(
        self, small_dataset, small_split
    ):
        model, trainer = make_trainer(small_dataset, small_split, epochs=5, pretrain=2)
        assert not model.clustering_active
        trainer.fit()
        assert model.clustering_active

    def test_clustering_never_activates_if_pretrain_longer(
        self, small_dataset, small_split
    ):
        model, trainer = make_trainer(
            small_dataset, small_split, epochs=3, pretrain=100
        )
        trainer.fit()
        assert not model.clustering_active

    def test_clusters_refreshed_during_training(self, small_dataset, small_split):
        model, trainer = make_trainer(small_dataset, small_split, epochs=6, pretrain=1)
        trainer.fit()
        # After activation + refreshes, tags spread across clusters.
        assert len(np.unique(model.tag_clusters)) > 1


class TestOutcome:
    def test_result_fields(self, small_dataset, small_split):
        model, trainer = make_trainer(small_dataset, small_split, epochs=4)
        result = trainer.fit()
        assert result.epochs_run == 4
        assert result.wall_time > 0
        assert len(result.history) == 4
        assert result.best_epoch >= 0

    def test_improves_over_untrained(self, small_dataset, small_split):
        evaluator = Evaluator(
            small_split.train, small_split.valid, top_n=(20,), metrics=("recall",)
        )
        untrained, _ = make_trainer(small_dataset, small_split)
        before = evaluator.evaluate(untrained)["recall@20"]
        model, trainer = make_trainer(small_dataset, small_split, epochs=25)
        trainer.config.learning_rate = 5e-3
        trainer.fit()
        after = evaluator.evaluate(model)["recall@20"]
        assert after > before

    def test_best_state_restored(self, small_dataset, small_split):
        model, trainer = make_trainer(small_dataset, small_split, epochs=6)
        result = trainer.fit()
        evaluator = Evaluator(
            small_split.train, small_split.valid, top_n=(20,), metrics=("recall",)
        )
        assert evaluator.evaluate(model)["recall@20"] == pytest.approx(
            result.best_metric
        )

    def test_deterministic_given_seed(self, small_dataset, small_split):
        def run():
            model, trainer = make_trainer(small_dataset, small_split, epochs=3)
            trainer.fit()
            return model.backbone.user_embedding.weight.data.copy()

        np.testing.assert_allclose(run(), run())


class TestPerfInstrumentation:
    def test_result_carries_phase_breakdown(self, small_dataset, small_split):
        _, trainer = make_trainer(small_dataset, small_split, epochs=4)
        result = trainer.fit()
        assert result.perf is not None
        for phase in ("sampling", "forward", "backward", "eval"):
            assert result.perf.timers[phase]["count"] > 0
        # Evaluator phases nest under the trainer's eval scope.
        assert result.perf.timers["eval/score"]["count"] > 0
        assert result.perf.counters["steps"] > 0
        assert result.perf.counters["triplets"] >= result.perf.counters["steps"]
        assert result.perf.counters["evals"] == 2  # eval_every=2, epochs=4

    def test_external_registry_receives_timings(self, small_dataset, small_split):
        from repro.perf import StopwatchRegistry

        perf = StopwatchRegistry()
        rng = np.random.default_rng(0)
        backbone = BPRMF(small_dataset.num_users, small_dataset.num_items, 16, rng)
        model = IMCAT(
            backbone, small_dataset, small_split.train,
            IMCATConfig(num_intents=4, pretrain_epochs=1, align_batch_size=32),
            rng=rng,
        )
        trainer = IMCATTrainer(
            model, small_split,
            IMCATTrainConfig(epochs=2, batch_size=128, eval_every=2),
            perf=perf,
        )
        trainer.fit()
        assert perf.count("forward") > 0
        assert perf.count("cluster-refresh") > 0

    def test_perf_report_formats(self, small_dataset, small_split):
        _, trainer = make_trainer(small_dataset, small_split, epochs=2)
        result = trainer.fit()
        text = result.perf.format(title="imcat run")
        assert text.startswith("imcat run")
        assert "forward" in text
