"""Tests for the IMCA module (Eqs. 7-14)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    IMCATConfig,
    IntentAlignment,
    aggregate_tags_per_cluster,
    aggregate_users,
    relatedness_weights,
)
from repro.nn import Tensor

from ..helpers import assert_gradcheck, tiny_dataset


class TestAggregateUsers:
    def test_matches_manual_mean(self, rng):
        tiny = tiny_dataset()
        emb = Tensor(rng.normal(size=(4, 6)))
        users_of_item = tiny.users_of_item()
        out = aggregate_users(
            np.array([0, 5]), users_of_item, emb, rng, max_users=100
        )
        expected_0 = emb.data[users_of_item[0]].mean(axis=0)
        expected_5 = emb.data[users_of_item[5]].mean(axis=0)
        np.testing.assert_allclose(out.data[0], expected_0)
        np.testing.assert_allclose(out.data[1], expected_5)

    def test_item_without_users_gets_zero(self, rng):
        users_of_item = [np.array([0]), np.array([], dtype=int)]
        emb = Tensor(rng.normal(size=(2, 4)))
        out = aggregate_users(np.array([1]), users_of_item, emb, rng)
        np.testing.assert_allclose(out.data, 0.0)

    def test_subsampling_caps_users(self, rng):
        users_of_item = [np.arange(100)]
        emb = Tensor(rng.normal(size=(100, 4)))
        out = aggregate_users(
            np.array([0]), users_of_item, emb, rng, max_users=5
        )
        assert out.shape == (1, 4)  # runs, mean over only 5 users

    def test_gradients_flow_to_user_embeddings(self, rng):
        tiny = tiny_dataset()
        emb = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        out = aggregate_users(
            np.array([0]), tiny.users_of_item(), emb, rng, max_users=100
        )
        out.sum().backward()
        # Users 0,1,2 interacted with item 0; user 3 did not.
        assert np.abs(emb.grad[:3]).sum() > 0
        np.testing.assert_allclose(emb.grad[3], 0.0)

    def test_gradcheck(self, rng):
        tiny = tiny_dataset()
        emb = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        batch = np.array([0, 1, 5])
        seed_state = rng.bit_generator.state

        def build():
            rng.bit_generator.state = seed_state
            return (
                aggregate_users(batch, tiny.users_of_item(), emb, rng, 100) ** 2
            ).sum()

        assert_gradcheck(build, [emb])


class TestAggregateTags:
    def test_counts_and_means(self, rng):
        tiny = tiny_dataset()
        # Tags: item0 -> {0,1}, item1 -> {0,2}; clusters: tag0,1 -> 0; tag2+ -> 1.
        clusters = np.array([0, 0, 1, 1, 1])
        emb = Tensor(rng.normal(size=(5, 6)))
        agg, counts = aggregate_tags_per_cluster(
            np.array([0, 1]), tiny.tags_of_item(), emb, clusters, 2
        )
        assert agg.shape == (4, 6)
        np.testing.assert_array_equal(counts, [[2, 0], [1, 1]])
        # Item 0, cluster 0: mean of tags 0 and 1.
        np.testing.assert_allclose(agg.data[0], emb.data[[0, 1]].mean(axis=0))
        # Item 0, cluster 1: empty -> zero vector (Eq. 8 fallback).
        np.testing.assert_allclose(agg.data[1], 0.0)
        # Item 1, cluster 1: tag 2 alone.
        np.testing.assert_allclose(agg.data[3], emb.data[2])

    def test_item_without_tags_all_zero(self, rng):
        tiny = tiny_dataset()
        clusters = np.zeros(5, dtype=int)
        emb = Tensor(rng.normal(size=(5, 6)))
        agg, counts = aggregate_tags_per_cluster(
            np.array([5]), tiny.tags_of_item(), emb, clusters, 3
        )
        np.testing.assert_allclose(agg.data, 0.0)
        np.testing.assert_array_equal(counts, [[0, 0, 0]])

    def test_gradcheck(self, rng):
        tiny = tiny_dataset()
        clusters = np.array([0, 1, 0, 1, 0])
        emb = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        batch = np.array([0, 1, 3])
        assert_gradcheck(
            lambda: (
                aggregate_tags_per_cluster(
                    batch, tiny.tags_of_item(), emb, clusters, 2
                )[0]
                ** 2
            ).sum(),
            [emb],
        )


class TestAggregatorEquivalence:
    """Vectorized aggregators vs the per-item reference loops.

    With the subsample cap above every item's user count the reference
    path draws nothing from the RNG, so the two implementations must
    agree to float tolerance on arbitrary batches.
    """

    def test_user_aggregator_matches_reference(self, rng):
        from repro.core import UserAggregator
        from repro.core.alignment import _reference_aggregate_users

        tiny = tiny_dataset()
        users_of_item = tiny.users_of_item()
        emb = Tensor(rng.normal(size=(4, 6)))
        agg = UserAggregator(users_of_item, 100, np.random.default_rng(0))
        for batch in ([0, 1, 2], [5], [3, 3, 0], list(range(6))):
            batch = np.array(batch)
            fast = agg(batch, emb)
            ref = _reference_aggregate_users(
                batch, users_of_item, emb, np.random.default_rng(0), 100
            )
            np.testing.assert_allclose(fast.data, ref.data, atol=1e-12)

    def test_user_aggregator_matches_reference_random(self, rng):
        from repro.core import UserAggregator
        from repro.core.alignment import _reference_aggregate_users

        for seed in range(3):
            r = np.random.default_rng(seed)
            num_users, num_items = 20, 12
            users_of_item = [
                np.sort(r.choice(num_users, size=r.integers(0, 9), replace=False))
                for _ in range(num_items)
            ]
            emb = Tensor(r.normal(size=(num_users, 5)))
            agg = UserAggregator(users_of_item, 50, np.random.default_rng(1))
            batch = r.integers(0, num_items, size=8)
            fast = agg(batch, emb)
            ref = _reference_aggregate_users(
                batch, users_of_item, emb, np.random.default_rng(1), 50
            )
            np.testing.assert_allclose(fast.data, ref.data, atol=1e-12)

    def test_user_aggregator_gradients_match_reference(self, rng):
        from repro.core import UserAggregator
        from repro.core.alignment import _reference_aggregate_users

        tiny = tiny_dataset()
        batch = np.array([0, 1, 5])
        fast_emb = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        ref_emb = Tensor(fast_emb.data.copy(), requires_grad=True)
        agg = UserAggregator(tiny.users_of_item(), 100, np.random.default_rng(0))
        (agg(batch, fast_emb) ** 2).sum().backward()
        (
            _reference_aggregate_users(
                batch, tiny.users_of_item(), ref_emb, np.random.default_rng(0), 100
            )
            ** 2
        ).sum().backward()
        np.testing.assert_allclose(fast_emb.grad, ref_emb.grad, atol=1e-12)

    def test_tag_aggregator_matches_reference(self, rng):
        from repro.core import TagAggregator
        from repro.core.alignment import (
            _reference_aggregate_tags_per_cluster,
        )

        tiny = tiny_dataset()
        clusters = np.array([0, 1, 0, 1, 0])
        emb = Tensor(rng.normal(size=(5, 6)))
        agg = TagAggregator(tiny.tags_of_item(), 2)
        for batch in ([0, 1], [5], [4, 4, 2], list(range(6))):
            batch = np.array(batch)
            fast, fast_counts = agg(batch, emb, clusters)
            ref, ref_counts = _reference_aggregate_tags_per_cluster(
                batch, tiny.tags_of_item(), emb, clusters, 2
            )
            np.testing.assert_array_equal(fast_counts, ref_counts)
            np.testing.assert_allclose(fast.data, ref.data, atol=1e-12)

    def test_public_aliases_point_at_references(self):
        from repro.core import alignment

        assert aggregate_users is alignment._reference_aggregate_users
        assert (
            aggregate_tags_per_cluster
            is alignment._reference_aggregate_tags_per_cluster
        )


class TestRelatednessWeights:
    def test_softmax_of_counts(self):
        counts = np.array([[1, 2, 0]])
        weights = relatedness_weights(counts)
        expected = np.exp([1.0, 2.0, 0.0])
        expected /= expected.sum()
        np.testing.assert_allclose(weights[0], expected)

    def test_rows_sum_to_one(self, rng):
        counts = rng.integers(0, 10, size=(6, 4))
        np.testing.assert_allclose(
            relatedness_weights(counts).sum(axis=1), 1.0
        )

    def test_large_counts_stable(self):
        weights = relatedness_weights(np.array([[1000, 0]]))
        assert np.all(np.isfinite(weights))
        assert weights[0, 0] == pytest.approx(1.0)

    def test_uniform_counts_uniform_weights(self):
        weights = relatedness_weights(np.array([[3, 3, 3, 3]]))
        np.testing.assert_allclose(weights, 0.25)


class TestIntentAlignment:
    def make(self, config=None, dim=8):
        config = config or IMCATConfig(num_intents=2, align_batch_size=4)
        return IntentAlignment(dim, config, np.random.default_rng(0)), config

    def _inputs(self, rng, batch=4, dim=8, k=2):
        return dict(
            item_batch=np.arange(batch),
            user_aggregation=Tensor(rng.normal(size=(batch, dim)), requires_grad=True),
            item_embeddings=Tensor(rng.normal(size=(batch, dim)), requires_grad=True),
            tag_aggregation_all=Tensor(
                rng.normal(size=(batch * k, dim)), requires_grad=True
            ),
            tag_counts=np.ones((batch, k), dtype=int),
        )

    def test_loss_is_finite_scalar(self, rng):
        module, _ = self.make()
        loss = module.alignment_loss(**self._inputs(rng))
        assert loss.size == 1
        assert np.isfinite(loss.item())

    def test_disabled_alignment_returns_zero(self, rng):
        module, _ = self.make(IMCATConfig(num_intents=2).without_uit())
        loss = module.alignment_loss(**self._inputs(rng))
        assert loss.item() == 0.0

    def test_gradients_reach_all_sources(self, rng):
        module, _ = self.make()
        inputs = self._inputs(rng)
        module.alignment_loss(**inputs).backward()
        assert inputs["user_aggregation"].grad is not None
        assert inputs["item_embeddings"].grad is not None
        assert inputs["tag_aggregation_all"].grad is not None

    def test_wo_ui_blocks_item_gradient(self, rng):
        module, _ = self.make(
            IMCATConfig(num_intents=2).without_ui()
        )
        inputs = self._inputs(rng)
        module.alignment_loss(**inputs).backward()
        assert inputs["item_embeddings"].grad is None

    def test_wo_ut_blocks_tag_gradient(self, rng):
        module, _ = self.make(
            IMCATConfig(num_intents=2).without_ut()
        )
        inputs = self._inputs(rng)
        module.alignment_loss(**inputs).backward()
        assert inputs["tag_aggregation_all"].grad is None

    def test_both_sources_disabled_rejected(self, rng):
        module, _ = self.make(
            IMCATConfig(num_intents=2, align_item=False, align_tag=False)
        )
        with pytest.raises(ValueError, match="align_tag/align_item"):
            module.alignment_loss(**self._inputs(rng))

    def test_nlt_changes_loss(self, rng):
        with_nlt, _ = self.make(IMCATConfig(num_intents=2))
        without, _ = self.make(IMCATConfig(num_intents=2).without_nlt())
        # Same parameters for the shared pieces (fresh rngs seeded alike).
        inputs_state = rng.bit_generator.state
        inputs_a = self._inputs(np.random.default_rng(42))
        inputs_b = self._inputs(np.random.default_rng(42))
        loss_a = with_nlt.alignment_loss(**inputs_a).item()
        loss_b = without.alignment_loss(**inputs_b).item()
        assert loss_a != pytest.approx(loss_b)

    def test_positive_mask_used(self, rng):
        module, config = self.make()
        inputs = self._inputs(rng)
        mask = np.eye(4, dtype=bool)
        mask[0, 1] = True
        masked = module.alignment_loss(
            **inputs, positive_masks=[mask, None]
        ).item()
        plain = module.alignment_loss(**inputs).item()
        assert masked != pytest.approx(plain)

    def test_items_without_tags_keep_zero_tag_component(self, rng):
        """Eq. 8: missing cluster tags must not inject garbage directions."""
        module, _ = self.make()
        inputs = self._inputs(rng)
        inputs["tag_counts"] = np.zeros((4, 2), dtype=int)
        # Tag aggregation rows are zero for empty clusters in practice,
        # but even with nonzero rows the mask must nullify them.
        k = 0
        agg = inputs["tag_aggregation_all"][np.arange(4) * 2 + k]
        z = module.item_tag_view(
            k, inputs["item_embeddings"], agg, np.zeros(4, dtype=bool)
        )
        # With the tag component masked, z equals the normalised item block.
        from repro.core import intent_view
        from repro.nn import functional as F

        expected = F.l2_normalize(
            intent_view(inputs["item_embeddings"], k, 2)
        ).data
        np.testing.assert_allclose(z.data, expected, atol=1e-12)

    def test_gradcheck_full_loss(self, rng):
        module, _ = self.make(dim=4)
        inputs = dict(
            item_batch=np.arange(3),
            user_aggregation=Tensor(rng.normal(size=(3, 4)), requires_grad=True),
            item_embeddings=Tensor(rng.normal(size=(3, 4)), requires_grad=True),
            tag_aggregation_all=Tensor(rng.normal(size=(6, 4)), requires_grad=True),
            tag_counts=np.array([[1, 0], [2, 1], [0, 3]]),
        )
        params = list(module.parameters())
        assert_gradcheck(
            lambda: module.alignment_loss(**inputs),
            [
                inputs["user_aggregation"],
                inputs["item_embeddings"],
                inputs["tag_aggregation_all"],
            ]
            + params,
            atol=2e-6,
        )


class TestUserAggregatorModes:
    def test_invalid_mode_rejected(self, rng):
        from repro.core import UserAggregator

        with pytest.raises(ValueError, match="mode"):
            UserAggregator([np.array([0])], 4, rng, mode="max")

    def test_attention_requires_item_embeddings(self, rng):
        from repro.core import UserAggregator

        tiny = tiny_dataset()
        agg = UserAggregator(tiny.users_of_item(), 8, rng, mode="attention")
        emb = Tensor(rng.normal(size=(4, 6)))
        with pytest.raises(ValueError, match="item_embeddings"):
            agg(np.array([0]), emb)

    def test_attention_weights_are_convex_combination(self, rng):
        from repro.core import UserAggregator

        tiny = tiny_dataset()
        agg = UserAggregator(tiny.users_of_item(), 8, rng, mode="attention")
        users = Tensor(rng.normal(size=(4, 6)))
        items = Tensor(rng.normal(size=(2, 6)))
        out = agg(np.array([0, 1]), users, item_embeddings=items)
        # Output lies inside the convex hull of the contributing rows:
        # check the per-dimension bounds for item 0 (users 0, 1, 2).
        contributing = users.data[[0, 1, 2]]
        assert np.all(out.data[0] <= contributing.max(axis=0) + 1e-9)
        assert np.all(out.data[0] >= contributing.min(axis=0) - 1e-9)

    def test_attention_item_without_users_zero(self, rng):
        from repro.core import UserAggregator

        users_of_item = [np.array([0]), np.array([], dtype=int)]
        agg = UserAggregator(users_of_item, 4, rng, mode="attention")
        users = Tensor(rng.normal(size=(1, 4)))
        items = Tensor(rng.normal(size=(1, 4)))
        out = agg(np.array([1]), users, item_embeddings=items)
        np.testing.assert_allclose(out.data, 0.0)

    def test_attention_gradients_flow(self, rng):
        from repro.core import UserAggregator

        tiny = tiny_dataset()
        agg = UserAggregator(tiny.users_of_item(), 8, rng, mode="attention")
        users = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        items = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        out = agg(np.array([0, 1]), users, item_embeddings=items)
        (out ** 2).sum().backward()
        assert users.grad is not None
        assert items.grad is not None

    def test_imcat_trains_with_attention_aggregation(
        self, small_dataset, small_split, rng
    ):
        from repro.core import IMCAT
        from repro.models import BPRMF

        backbone = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 16,
            np.random.default_rng(0),
        )
        model = IMCAT(
            backbone, small_dataset, small_split.train,
            IMCATConfig(num_intents=4, user_aggregation="attention"),
            rng=np.random.default_rng(0),
        )
        model.refresh_clusters(rng)
        loss = model.alignment_loss(np.arange(8), rng)
        assert np.isfinite(loss.item())
        loss.backward()
        assert backbone.user_embedding.weight.grad is not None


class TestUserAggregatorResample:
    def test_resample_changes_subsample_of_popular_items(self, rng):
        from repro.core import UserAggregator

        users_of_item = [np.arange(100)]  # far over any cap
        agg = UserAggregator(users_of_item, 8, np.random.default_rng(0))
        before = agg._padded.copy()
        agg.resample(np.random.default_rng(1))
        assert not np.array_equal(agg._padded, before)

    def test_resample_keeps_small_items_fixed(self, rng):
        from repro.core import UserAggregator

        users_of_item = [np.array([3, 5])]  # under the cap
        agg = UserAggregator(users_of_item, 8, np.random.default_rng(0))
        before = agg._padded.copy()
        agg.resample(np.random.default_rng(1))
        np.testing.assert_array_equal(agg._padded, before)
