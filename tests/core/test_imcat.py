"""Tests for the IMCAT wrapper model and its joint objective."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IMCAT, IMCATConfig
from repro.data import BPRSampler, ItemTagSampler
from repro.models import BPRMF, LightGCN


def make_model(dataset, split, config=None, backbone="bprmf", dim=16, seed=0):
    rng = np.random.default_rng(seed)
    if backbone == "bprmf":
        bb = BPRMF(dataset.num_users, dataset.num_items, dim, rng)
    else:
        bb = LightGCN(
            dataset.num_users, dataset.num_items,
            (split.train.user_ids, split.train.item_ids), dim, rng=rng,
        )
    config = config or IMCATConfig(num_intents=4, align_batch_size=32)
    return IMCAT(bb, dataset, split.train, config, rng=rng)


def make_batches(dataset, split, seed=0):
    ui = next(BPRSampler(split.train, seed=seed).epoch(64, shuffle=False))
    it = next(ItemTagSampler(dataset, seed=seed).epoch(64, shuffle=False))
    items = np.arange(min(32, dataset.num_items))
    return ui, it, items


class TestConstruction:
    def test_wraps_backbone(self, small_dataset, small_split):
        model = make_model(small_dataset, small_split)
        assert model.num_users == small_dataset.num_users
        assert model.num_tags == small_dataset.num_tags

    def test_parameters_include_all_components(self, small_dataset, small_split):
        model = make_model(small_dataset, small_split)
        names = {name for name, _ in model.named_parameters()}
        assert any(name.startswith("backbone.") for name in names)
        assert any(name.startswith("tag_embedding.") for name in names)
        assert any(name.startswith("clustering.") for name in names)
        assert any(name.startswith("alignment.") for name in names)

    def test_intent_dim_must_divide(self, small_dataset, small_split):
        config = IMCATConfig(num_intents=3)
        with pytest.raises(ValueError, match="divisible"):
            make_model(small_dataset, small_split, config, dim=16)

    def test_scoring_delegates_to_backbone(self, small_dataset, small_split):
        model = make_model(small_dataset, small_split)
        users = np.array([0, 1])
        np.testing.assert_allclose(
            model.all_scores(users), model.backbone.all_scores(users)
        )


class TestLossComponents:
    def test_ui_loss_positive(self, small_dataset, small_split):
        model = make_model(small_dataset, small_split)
        ui, _, _ = make_batches(small_dataset, small_split)
        assert model.ui_loss(ui).item() > 0

    def test_vt_loss_positive(self, small_dataset, small_split):
        model = make_model(small_dataset, small_split)
        _, it, _ = make_batches(small_dataset, small_split)
        assert model.vt_loss(it).item() > 0

    def test_kl_loss_zero_before_activation(self, small_dataset, small_split):
        model = make_model(small_dataset, small_split)
        assert model.kl_loss().item() == 0.0

    def test_kl_loss_nonzero_after_activation(self, small_dataset, small_split, rng):
        model = make_model(small_dataset, small_split)
        model.activate_clustering(rng)
        assert model.kl_loss().item() >= 0.0
        assert model.clustering_active

    def test_alignment_loss_finite(self, small_dataset, small_split, rng):
        model = make_model(small_dataset, small_split)
        model.refresh_clusters(rng)
        _, _, items = make_batches(small_dataset, small_split)
        loss = model.alignment_loss(items, rng)
        assert np.isfinite(loss.item())

    def test_training_loss_composes(self, small_dataset, small_split, rng):
        model = make_model(small_dataset, small_split)
        model.refresh_clusters(rng)
        ui, it, items = make_batches(small_dataset, small_split)
        total = model.training_loss(ui, it, items, rng)
        assert np.isfinite(total.item())
        total.backward()
        grads = sum(p.grad is not None for p in model.parameters())
        assert grads > 0

    def test_alpha_zero_skips_vt(self, small_dataset, small_split, rng):
        config = IMCATConfig(num_intents=4, alpha=0.0, beta=0.0, gamma=0.0,
                             independence_weight=0.0)
        model = make_model(small_dataset, small_split, config)
        ui, it, items = make_batches(small_dataset, small_split)
        total = model.training_loss(ui, it, items, rng)
        expected = model.ui_loss(ui)
        assert total.item() == pytest.approx(expected.item())

    def test_gradient_reaches_tag_embeddings_via_alignment(
        self, small_dataset, small_split, rng
    ):
        config = IMCATConfig(
            num_intents=4, alpha=0.0, gamma=0.0, independence_weight=0.0,
            beta=1.0, align_batch_size=32,
        )
        model = make_model(small_dataset, small_split, config)
        model.refresh_clusters(rng)
        _, _, items = make_batches(small_dataset, small_split)
        loss = model.alignment_loss(items, rng)
        loss.backward()
        assert model.tag_embedding.weight.grad is not None


class TestClusterLifecycle:
    def test_initial_clusters_all_zero(self, small_dataset, small_split):
        model = make_model(small_dataset, small_split)
        assert np.all(model.tag_clusters == 0)

    def test_activation_assigns_diverse_clusters(
        self, small_dataset, small_split, rng
    ):
        model = make_model(small_dataset, small_split)
        model.activate_clustering(rng)
        # K-means on Xavier-random embeddings spreads assignments.
        assert len(np.unique(model.tag_clusters)) > 1

    def test_refresh_builds_isa_index(self, small_dataset, small_split, rng):
        model = make_model(small_dataset, small_split)
        model.refresh_clusters(rng)
        assert model.isa_index is not None

    def test_isa_disabled_skips_index(self, small_dataset, small_split, rng):
        config = IMCATConfig(num_intents=4, use_isa=False)
        model = make_model(small_dataset, small_split, config)
        model.refresh_clusters(rng)
        assert model.isa_index is None

    def test_cluster_range_valid(self, small_dataset, small_split, rng):
        model = make_model(small_dataset, small_split)
        model.activate_clustering(rng)
        assert model.tag_clusters.min() >= 0
        assert model.tag_clusters.max() < 4


class TestBackboneIntegration:
    def test_lightgcn_backbone_step_cache(self, small_dataset, small_split, rng):
        model = make_model(small_dataset, small_split, backbone="lightgcn")
        model.refresh_clusters(rng)
        ui, it, items = make_batches(small_dataset, small_split)
        model.begin_step()
        loss = model.training_loss(ui, it, items, rng)
        loss.backward()  # must not raise (single propagation reused)
        assert model.backbone.user_embedding.weight.grad is not None

    def test_state_dict_roundtrip(self, small_dataset, small_split):
        model_a = make_model(small_dataset, small_split, seed=0)
        model_b = make_model(small_dataset, small_split, seed=99)
        model_b.load_state_dict(model_a.state_dict())
        np.testing.assert_allclose(
            model_a.tag_embedding.weight.data,
            model_b.tag_embedding.weight.data,
        )


class TestClusteringModes:
    def test_kmeans_mode_assigns_clusters(self, small_dataset, small_split, rng):
        config = IMCATConfig(num_intents=4, use_end_to_end_clustering=False)
        model = make_model(small_dataset, small_split, config)
        model.activate_clustering(rng)
        assert len(np.unique(model.tag_clusters)) > 1

    def test_kmeans_mode_kl_loss_zero(self, small_dataset, small_split, rng):
        config = IMCATConfig(num_intents=4, use_end_to_end_clustering=False)
        model = make_model(small_dataset, small_split, config)
        model.activate_clustering(rng)
        assert model.kl_loss().item() == 0.0

    def test_e2e_mode_caches_kl_target(self, small_dataset, small_split, rng):
        model = make_model(small_dataset, small_split)
        model.activate_clustering(rng)
        assert model._kl_target is not None
        assert model._kl_target.shape == (small_dataset.num_tags, 4)
        np.testing.assert_allclose(model._kl_target.sum(axis=1), 1.0)

    def test_kl_target_fixed_between_refreshes(self, small_dataset, small_split, rng):
        model = make_model(small_dataset, small_split)
        model.activate_clustering(rng)
        target_before = model._kl_target.copy()
        # Perturb embeddings without refreshing: target must not move.
        model.tag_embedding.weight.data += 0.5
        model.kl_loss()
        np.testing.assert_allclose(model._kl_target, target_before)
        # After a refresh it follows the new embeddings.
        model.refresh_clusters(rng)
        assert not np.allclose(model._kl_target, target_before)
