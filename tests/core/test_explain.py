"""Tests for intent-level recommendation explanations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    IMCAT,
    IMCATConfig,
    cluster_summary,
    explain_pair,
    explain_recommendations,
)
from repro.models import BPRMF


@pytest.fixture
def model(small_dataset, small_split, rng):
    backbone = BPRMF(
        small_dataset.num_users, small_dataset.num_items, 16,
        np.random.default_rng(0),
    )
    m = IMCAT(
        backbone, small_dataset, small_split.train,
        IMCATConfig(num_intents=4), rng=np.random.default_rng(0),
    )
    m.activate_clustering(np.random.default_rng(0))
    return m


class TestExplainPair:
    def test_intent_scores_sum_to_total(self, model):
        explanation = explain_pair(model, user=0, item=1)
        assert explanation.total_score == pytest.approx(
            explanation.intent_scores.sum()
        )

    def test_decomposition_matches_backbone_score(self, model):
        explanation = explain_pair(model, user=2, item=3)
        score = model.backbone.pair_scores(
            np.array([2]), np.array([3])
        ).item()
        assert explanation.total_score == pytest.approx(score)

    def test_shares_are_distribution(self, model):
        explanation = explain_pair(model, user=0, item=0)
        shares = explanation.shares()
        assert shares.sum() == pytest.approx(1.0)
        assert np.all(shares >= 0)

    def test_dominant_intent_is_argmax(self, model):
        explanation = explain_pair(model, user=1, item=2)
        assert explanation.dominant_intent == int(
            np.argmax(explanation.intent_scores)
        )

    def test_tag_counts_match_clusters(self, model, small_dataset):
        item = int(small_dataset.tag_item_ids[0])
        explanation = explain_pair(model, user=0, item=item)
        tags = small_dataset.tags_of_item()[item]
        expected = np.bincount(model.tag_clusters[tags], minlength=4)
        np.testing.assert_array_equal(explanation.item_tag_counts, expected)


class TestExplainRecommendations:
    def test_one_explanation_per_item(self, model):
        explanations = explain_recommendations(model, 0, [1, 2, 3])
        assert [e.item for e in explanations] == [1, 2, 3]
        assert all(e.user == 0 for e in explanations)


class TestClusterSummary:
    def test_covers_all_intents(self, model):
        summaries = cluster_summary(model)
        assert len(summaries) == 4
        total = sum(s["size"] for s in summaries)
        assert total == model.num_tags

    def test_top_limits_members(self, model):
        summaries = cluster_summary(model, top=2)
        assert all(len(s["tags"]) <= 2 for s in summaries)

    def test_names_applied(self, model):
        names = {t: f"name-{t}" for t in range(model.num_tags)}
        summaries = cluster_summary(model, tag_names=names, top=3)
        flat = [tag for s in summaries for tag in s["tags"]]
        assert all(tag.startswith("name-") for tag in flat)

    def test_kmeans_mode_uses_cluster_means(self, small_dataset, small_split):
        backbone = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 16,
            np.random.default_rng(0),
        )
        m = IMCAT(
            backbone, small_dataset, small_split.train,
            IMCATConfig(num_intents=4, use_end_to_end_clustering=False),
            rng=np.random.default_rng(0),
        )
        m.activate_clustering(np.random.default_rng(0))
        summaries = cluster_summary(m)
        assert sum(s["size"] for s in summaries) == m.num_tags
