"""Tests for the ISA module (Eq. 15 and positive-set construction)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SetToSetIndex, cluster_tag_matrix, jaccard_similar_pairs

from ..helpers import tiny_dataset


def brute_force_jaccard(sets, threshold):
    """Reference implementation of Eq. 15 over python sets."""
    n = len(sets)
    pairs = set()
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            union = sets[i] | sets[j]
            if not union:
                continue
            jac = len(sets[i] & sets[j]) / len(union)
            if jac > threshold:
                pairs.add((i, j))
    return pairs


class TestClusterTagMatrix:
    def test_restricts_to_cluster(self):
        tiny = tiny_dataset()
        clusters = np.array([0, 1, 0, 1, 0])
        matrix = cluster_tag_matrix(tiny.tags_of_item(), clusters, 0, 6, 5)
        # Item 0 has tags {0, 1}; only tag 0 is in cluster 0.
        assert matrix[0, 0] == 1.0
        assert matrix[0, 1] == 0.0

    def test_empty_cluster(self):
        tiny = tiny_dataset()
        clusters = np.zeros(5, dtype=int)
        matrix = cluster_tag_matrix(tiny.tags_of_item(), clusters, 3, 6, 5)
        assert matrix.nnz == 0


class TestJaccardPairs:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        import scipy.sparse as sp

        membership = sp.random(15, 10, density=0.3, random_state=1)
        membership.data[:] = 1.0
        membership = membership.tocsr()
        sets = [
            set(membership[i].indices.tolist()) for i in range(15)
        ]
        for threshold in (0.1, 0.5, 0.9):
            ours = jaccard_similar_pairs(membership, threshold).tocoo()
            our_pairs = set(zip(ours.row.tolist(), ours.col.tolist()))
            assert our_pairs == brute_force_jaccard(sets, threshold)

    def test_diagonal_excluded(self):
        import scipy.sparse as sp

        membership = sp.csr_matrix(np.ones((3, 4)))
        pairs = jaccard_similar_pairs(membership, 0.5)
        assert pairs.diagonal().sum() == 0

    def test_identical_sets_maximally_similar(self):
        import scipy.sparse as sp

        membership = sp.csr_matrix(np.array([[1, 1, 0], [1, 1, 0]], dtype=float))
        pairs = jaccard_similar_pairs(membership, 0.99)
        assert pairs[0, 1] and pairs[1, 0]

    def test_threshold_one_excludes_everything(self):
        import scipy.sparse as sp

        membership = sp.csr_matrix(np.array([[1, 1], [1, 1]], dtype=float))
        # Jaccard == 1.0 is not > 1.0.
        assert jaccard_similar_pairs(membership, 1.0).nnz == 0

    def test_invalid_threshold(self):
        import scipy.sparse as sp

        with pytest.raises(ValueError):
            jaccard_similar_pairs(sp.csr_matrix((2, 2)), 1.5)

    def test_symmetry(self):
        import scipy.sparse as sp

        rng = np.random.default_rng(2)
        membership = sp.random(20, 8, density=0.3, random_state=3)
        membership.data[:] = 1.0
        pairs = jaccard_similar_pairs(membership.tocsr(), 0.4)
        diff = (pairs.astype(int) - pairs.T.astype(int))
        assert abs(diff).sum() == 0

    @given(st.floats(0.05, 0.95))
    @settings(max_examples=15, deadline=None)
    def test_monotone_in_threshold(self, threshold):
        import scipy.sparse as sp

        membership = sp.random(12, 6, density=0.4, random_state=4)
        membership.data[:] = 1.0
        membership = membership.tocsr()
        low = jaccard_similar_pairs(membership, threshold * 0.5).nnz
        high = jaccard_similar_pairs(membership, threshold).nnz
        assert high <= low


class TestSetToSetIndex:
    def make_index(self, threshold=0.3, num_intents=2):
        tiny = tiny_dataset()
        clusters = np.array([0, 0, 1, 1, 0])
        return (
            SetToSetIndex(
                tiny.tags_of_item(), clusters, num_intents,
                tiny.num_items, tiny.num_tags, threshold,
            ),
            tiny,
        )

    def test_similar_items_consistent_with_jaccard(self):
        index, tiny = self.make_index(threshold=0.2)
        clusters = np.array([0, 0, 1, 1, 0])
        tags_of_item = tiny.tags_of_item()
        for intent in range(2):
            sets = [
                set(t for t in tags_of_item[i] if clusters[t] == intent)
                for i in range(tiny.num_items)
            ]
            expected = brute_force_jaccard(sets, 0.2)
            for item in range(tiny.num_items):
                similar = set(index.similar_items(item, intent).tolist())
                assert similar == {j for (i, j) in expected if i == item}

    def test_mask_diagonal_always_true(self, rng):
        index, _ = self.make_index(threshold=0.0)
        batch = np.array([0, 1, 2, 3])
        mask = index.batch_positive_mask(batch, 0, rng)
        if mask is not None:
            assert np.all(np.diag(mask))

    def test_mask_none_when_no_pairs(self, rng):
        index, _ = self.make_index(threshold=0.999)
        batch = np.array([0, 5])
        assert index.batch_positive_mask(batch, 0, rng) is None

    def test_max_positives_respected(self, rng):
        index, tiny = self.make_index(threshold=0.0)
        batch = np.arange(tiny.num_items)
        mask = index.batch_positive_mask(batch, 0, rng, max_positives=1)
        if mask is not None:
            # Each row has at most 1 + 1 (self) positives.
            assert mask.sum(axis=1).max() <= 2

    def test_num_similar_counts(self):
        index, _ = self.make_index(threshold=0.0)
        assert index.num_similar(0) >= 0
