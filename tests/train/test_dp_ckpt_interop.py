"""Checkpoint interop across execution modes.

``fused``/``dp_workers``/``dp_backend`` are volatile config fields: a
snapshot written under any execution mode must resume under any other
with a bit-exact continuation.  These tests halt a run at an epoch
boundary in one mode and finish it in another, comparing against the
uninterrupted serial run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IMCAT, IMCATConfig, IMCATTrainConfig, IMCATTrainer
from repro.data import generate_preset, split_dataset
from repro.models import BPRMF, TrainConfig, fit_bpr

EPOCHS = 4
HALT = 2


@pytest.fixture(scope="module")
def interop_split():
    dataset = generate_preset("hetrec-del", scale=0.03, seed=31)
    return dataset, split_dataset(dataset, seed=32)


def make_bprmf(interop_split):
    dataset, _ = interop_split
    return BPRMF(dataset.num_users, dataset.num_items, 16, np.random.default_rng(3))


def make_imcat(interop_split):
    dataset, split = interop_split
    rng = np.random.default_rng(3)
    backbone = BPRMF(dataset.num_users, dataset.num_items, 16, rng)
    return IMCAT(
        backbone, dataset, split.train,
        IMCATConfig(num_intents=2, pretrain_epochs=1, cluster_refresh_every=5),
        rng=rng,
    )


def bpr_config(**overrides):
    defaults = dict(epochs=EPOCHS, batch_size=128, eval_every=2, seed=5)
    defaults.update(overrides)
    return TrainConfig(**defaults)


def imcat_config(**overrides):
    defaults = dict(epochs=EPOCHS, batch_size=128, eval_every=2, seed=5)
    defaults.update(overrides)
    return IMCATTrainConfig(**defaults)


def assert_states_equal(model_a, model_b):
    state_a, state_b = model_a.state_dict(), model_b.state_dict()
    assert sorted(state_a) == sorted(state_b)
    for name, array in state_a.items():
        assert np.array_equal(array, state_b[name]), f"parameter {name} diverged"


MODES = {
    "serial": {},
    "fused-dp-fork": {"fused": True, "dp_workers": 1, "dp_backend": "fork"},
    "dp-inline": {"dp_workers": 1, "dp_backend": "inline"},
}


class TestBprInterop:
    @pytest.mark.parametrize("halt_mode", sorted(MODES))
    @pytest.mark.parametrize("resume_mode", sorted(MODES))
    def test_cross_mode_resume_is_bit_exact(
        self, interop_split, tmp_path, halt_mode, resume_mode
    ):
        if halt_mode == resume_mode == "serial":
            pytest.skip("covered by tests/core/test_resume.py")
        _, split = interop_split
        full_model = make_bprmf(interop_split)
        full = fit_bpr(full_model, split, bpr_config())

        part_model = make_bprmf(interop_split)
        fit_bpr(
            part_model, split,
            bpr_config(epochs=HALT, checkpoint_dir=str(tmp_path),
                       **MODES[halt_mode]),
        )
        resumed_model = make_bprmf(interop_split)
        resumed = fit_bpr(
            resumed_model, split,
            bpr_config(checkpoint_dir=str(tmp_path), resume_from="auto",
                       **MODES[resume_mode]),
        )
        assert resumed.history == full.history
        assert_states_equal(resumed_model, full_model)


class TestImcatInterop:
    def test_serial_snapshot_resumes_fused_dp(self, interop_split, tmp_path):
        # HALT=2 > pretrain_epochs=1: the resume re-enters an active
        # clustering phase under fused data-parallel execution.
        _, split = interop_split
        full_model = make_imcat(interop_split)
        full = IMCATTrainer(full_model, split, imcat_config()).fit()

        part_model = make_imcat(interop_split)
        IMCATTrainer(
            part_model, split,
            imcat_config(epochs=HALT, checkpoint_dir=str(tmp_path)),
        ).fit()
        resumed_model = make_imcat(interop_split)
        resumed = IMCATTrainer(
            resumed_model, split,
            imcat_config(checkpoint_dir=str(tmp_path), resume_from="auto",
                         fused=True, dp_workers=1, dp_backend="fork"),
        ).fit()
        assert resumed.history == full.history
        assert_states_equal(resumed_model, full_model)

    def test_fused_dp_snapshot_resumes_serial(self, interop_split, tmp_path):
        _, split = interop_split
        full_model = make_imcat(interop_split)
        full = IMCATTrainer(full_model, split, imcat_config()).fit()

        part_model = make_imcat(interop_split)
        IMCATTrainer(
            part_model, split,
            imcat_config(epochs=HALT, checkpoint_dir=str(tmp_path),
                         fused=True, dp_workers=1, dp_backend="fork"),
        ).fit()
        resumed_model = make_imcat(interop_split)
        resumed = IMCATTrainer(
            resumed_model, split,
            imcat_config(checkpoint_dir=str(tmp_path), resume_from="auto"),
        ).fit()
        assert resumed.history == full.history
        assert_states_equal(resumed_model, full_model)
