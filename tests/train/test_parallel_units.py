"""Unit tests for the data-parallel engine primitives.

Covers :func:`shard_bounds` partition properties, :class:`ParamArena`
bind/detach round-trips, :class:`GradBoard` publish/reduce semantics
(rank-order sums, ``None``-grad skip, stale-slot clearing), and the
engine's validation plus a toy fork-vs-inline equivalence run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.nn.module import Parameter
from repro.train import (
    DataParallelEngine,
    DataParallelTask,
    EpochResult,
    GradBoard,
    ParamArena,
    shard_bounds,
)


def make_params(rng, shapes=((3, 4), (5,), (2, 2))):
    return [Parameter(rng.normal(size=shape)) for shape in shapes]


class TestShardBounds:
    @pytest.mark.parametrize(
        "n,workers", [(10, 1), (10, 3), (7, 7), (3, 5), (0, 2), (1024, 4)]
    )
    def test_partition_properties(self, n, workers):
        bounds = shard_bounds(n, workers)
        assert len(bounds) == workers
        assert bounds[0][0] == 0 and bounds[-1][1] == n
        sizes = []
        for (lo, hi), (next_lo, _) in zip(bounds, bounds[1:]):
            assert hi == next_lo  # contiguous
        for lo, hi in bounds:
            assert 0 <= lo <= hi
            sizes.append(hi - lo)
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1  # balanced
        assert sizes == sorted(sizes, reverse=True)  # extras go first

    def test_single_worker_is_whole_range(self):
        assert shard_bounds(17, 1) == [(0, 17)]

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="workers must be positive"):
            shard_bounds(10, 0)


class TestParamArena:
    def test_bind_preserves_values_and_shares_storage(self, rng):
        params = make_params(rng)
        originals = [param.data.copy() for param in params]
        arena = ParamArena(params)
        try:
            for param, original in zip(params, originals):
                assert np.array_equal(param.data, original)
            # In-place writes land in the arena views (the broadcast).
            params[0].data += 1.0
            assert np.array_equal(params[0].data, originals[0] + 1.0)
        finally:
            arena.detach()

    def test_detach_restores_private_arrays(self, rng):
        params = make_params(rng)
        arena = ParamArena(params)
        arena.detach()
        for param in params:
            # A private heap array again: resizable only if owned.
            assert param.data.base is None
        arena.detach()  # second detach is a no-op, not a crash


class TestGradBoard:
    def test_single_worker_reduce_is_bitwise_copy(self, rng):
        params = make_params(rng)
        board = GradBoard(params, workers=1, shared=False)
        grads = [rng.normal(size=param.data.shape) for param in params]
        for param, grad in zip(params, grads):
            param.grad = grad.copy()
        board.publish(0, 0.5)
        total = board.reduce_into()
        assert total == 0.5
        for param, grad in zip(params, grads):
            assert np.array_equal(param.grad, grad)
        board.close()

    def test_reduce_sums_in_rank_order(self, rng):
        params = make_params(rng)
        board = GradBoard(params, workers=3, shared=False)
        per_rank = [
            [rng.normal(size=param.data.shape) for param in params]
            for _ in range(3)
        ]
        for rank in range(3):
            for param, grad in zip(params, per_rank[rank]):
                param.grad = grad.copy()
            board.publish(rank, float(rank))
        total = board.reduce_into()
        assert total == 0.0 + 1.0 + 2.0
        for i, param in enumerate(params):
            expected = per_rank[0][i].copy()
            expected += per_rank[1][i]
            expected += per_rank[2][i]
            assert np.array_equal(param.grad, expected)
        assert board.rounds == 1
        board.close()

    def test_none_grads_stay_none(self, rng):
        params = make_params(rng)
        board = GradBoard(params, workers=2, shared=False)
        for rank in range(2):
            params[0].grad = rng.normal(size=params[0].data.shape)
            params[1].grad = None  # e.g. an unused embedding this step
            params[2].grad = rng.normal(size=params[2].data.shape)
            board.publish(rank, 1.0)
        board.reduce_into()
        assert params[0].grad is not None
        assert params[1].grad is None
        assert params[2].grad is not None
        board.close()

    def test_empty_shard_clears_stale_slot(self, rng):
        params = make_params(rng)
        board = GradBoard(params, workers=2, shared=False)
        rank1_grads = [rng.normal(size=param.data.shape) for param in params]
        for rank in range(2):
            for param, grad in zip(params, rank1_grads):
                param.grad = grad.copy()
            board.publish(rank, 1.0)
        board.reduce_into()
        # Next step: rank 1's shard is empty.  Its previous gradients
        # must not leak into the reduce.
        rank0_grads = [rng.normal(size=param.data.shape) for param in params]
        for param, grad in zip(params, rank0_grads):
            param.grad = grad.copy()
        board.publish(0, 0.25)
        board.publish(1, None)
        total = board.reduce_into()
        assert total == 0.25
        for param, grad in zip(params, rank0_grads):
            assert np.array_equal(param.grad, grad)
        board.close()

    def test_closed_board_raises(self, rng):
        params = make_params(rng)
        board = GradBoard(params, workers=1, shared=False)
        board.close()
        with pytest.raises(RuntimeError, match="closed"):
            board.publish(0, 1.0)
        with pytest.raises(RuntimeError, match="closed"):
            board.reduce_into()


class _ToyTask(DataParallelTask):
    """Deterministic gradients; SGD-style apply.  No RNG, no sampling."""

    def __init__(self, params, steps=3):
        self.params = params
        self.steps = steps

    def steps_per_epoch(self):
        return self.steps

    def begin_epoch(self):
        pass

    def next_step(self):
        pass

    def compute(self, rank, workers):
        for i, param in enumerate(self.params):
            param.grad = np.full_like(param.data, float(rank + 1) / (i + 1))
        return float(rank + 1)

    def apply_step(self):
        for param in self.params:
            if param.grad is not None:
                param.data -= 0.1 * param.grad


class TestEngineLifecycle:
    def test_rejects_bad_worker_count_and_backend(self, rng):
        params = make_params(rng)
        with pytest.raises(ValueError, match="dp_workers must be positive"):
            DataParallelEngine(params, workers=0, backend="inline")
        with pytest.raises(ValueError, match="dp_backend"):
            DataParallelEngine(params, workers=1, backend="threads")

    def test_closed_engine_raises(self, rng):
        params = make_params(rng)
        engine = DataParallelEngine(params, workers=1, backend="inline")
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.run_epoch(_ToyTask(params))

    def test_zero_steps_is_empty_epoch(self, rng):
        params = make_params(rng)
        with DataParallelEngine(params, workers=2, backend="inline") as engine:
            outcome = engine.run_epoch(_ToyTask(params, steps=0))
        assert outcome == EpochResult()

    def test_inline_epoch_losses_and_metrics(self, rng):
        params = make_params(rng)
        metrics = obs.MetricsRegistry()
        with DataParallelEngine(
            params, workers=3, backend="inline", metrics=metrics
        ) as engine:
            outcome = engine.run_epoch(_ToyTask(params, steps=4))
        assert outcome.steps == 4
        assert outcome.losses == [6.0] * 4  # 1 + 2 + 3 per step
        counters = metrics.snapshot()["counters"]
        assert counters["dp.steps"] == 4
        assert counters["dp.epochs"] == 1

    def test_worker_crash_fails_loudly(self, rng):
        class _CrashTask(_ToyTask):
            def compute(self, rank, workers):
                if rank == 1:
                    raise RuntimeError("worker bug")
                return super().compute(rank, workers)

        params = make_params(rng)
        with DataParallelEngine(
            params, workers=2, backend="fork", barrier_timeout=30.0
        ) as engine:
            with pytest.raises(RuntimeError, match="dp-worker-1.*70"):
                engine.run_epoch(_CrashTask(params))

    def test_fork_matches_inline_bitwise(self, rng):
        init = [param.data.copy() for param in make_params(rng)]

        def run(backend):
            params = [Parameter(data.copy()) for data in init]
            with DataParallelEngine(params, workers=2, backend=backend) as eng:
                outcome = eng.run_epoch(_ToyTask(params, steps=5))
            return outcome, [param.data.copy() for param in params]

        inline_out, inline_params = run("inline")
        fork_out, fork_params = run("fork")
        assert inline_out.losses == fork_out.losses
        for a, b in zip(inline_params, fork_params):
            assert np.array_equal(a, b)
