"""Start-method guard: fork-dependent subsystems fail fast elsewhere.

The data-parallel fork backend and the process-isolated serving workers
both inherit state across ``fork``.  On platforms without it (Windows,
some macOS configurations) they must raise a clear, actionable error at
construction time instead of hanging or crashing mid-epoch.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.concurrency import require_fork_start_method
from repro.data import generate_preset, split_dataset
from repro.models import BPRMF, TrainConfig, fit_bpr
from repro.nn.module import Parameter
from repro.train import DataParallelEngine


@pytest.fixture
def forkless(monkeypatch):
    """Pretend the platform only offers spawn (e.g. Windows)."""
    monkeypatch.setattr(
        multiprocessing, "get_all_start_methods", lambda: ["spawn"]
    )


class TestRequireForkStartMethod:
    def test_passes_where_fork_exists(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no fork")
        require_fork_start_method("test feature")

    def test_error_names_feature_and_remedy(self, forkless):
        with pytest.raises(RuntimeError) as excinfo:
            require_fork_start_method("data-parallel training")
        message = str(excinfo.value)
        assert "data-parallel training" in message
        assert "'fork'" in message
        assert "spawn" in message  # what the platform does offer
        assert "inline" in message  # the remedy

    def test_engine_fork_backend_guarded(self, forkless, rng):
        params = [Parameter(rng.normal(size=(2, 2)))]
        with pytest.raises(RuntimeError, match="fork"):
            DataParallelEngine(params, workers=1, backend="fork")

    def test_engine_inline_backend_unaffected(self, forkless, rng):
        params = [Parameter(rng.normal(size=(2, 2)))]
        with DataParallelEngine(params, workers=1, backend="inline"):
            pass

    def test_serving_workers_guarded(self, forkless):
        from repro.serve.proc import ProcWorker, WorkerSpec

        spec = WorkerSpec(
            builder=lambda: BPRMF(4, 4, 2, rng=np.random.default_rng(7))
        )
        with pytest.raises(RuntimeError, match="fork"):
            ProcWorker(spec, 0)


@pytest.mark.skipif(
    "fork" in multiprocessing.get_all_start_methods(),
    reason="fork available: the guard never fires on this platform",
)
class TestForklessSmoke:
    """Runs only on genuinely fork-less platforms (spawn-only)."""

    def test_dp_fork_config_raises_before_training(self):
        dataset = generate_preset("hetrec-del", scale=0.02, seed=41)
        split = split_dataset(dataset, seed=42)
        model = BPRMF(
            dataset.num_users, dataset.num_items, 8, np.random.default_rng(3)
        )
        with pytest.raises(RuntimeError, match="fork"):
            fit_bpr(
                model, split,
                TrainConfig(epochs=1, batch_size=64, dp_workers=2),
            )

    def test_inline_backend_trains(self):
        dataset = generate_preset("hetrec-del", scale=0.02, seed=41)
        split = split_dataset(dataset, seed=42)
        model = BPRMF(
            dataset.num_users, dataset.num_items, 8, np.random.default_rng(3)
        )
        result = fit_bpr(
            model, split,
            TrainConfig(epochs=1, batch_size=64, dp_workers=2,
                        dp_backend="inline"),
        )
        assert result.epochs_run == 1
