"""Lockset-sanitizer hammer for the shared gradient arena.

:class:`repro.train.parallel.GradBoard` is lock-free by *layout*: each
rank writes only its own slot, so publishing needs no lock, and the
declared ``_lock`` guards only the board's own bookkeeping.  This test
drives concurrent publishers from many threads with the sanitizer armed
(:mod:`repro.testing.lockset`, always on under ``REPRO_SANITIZE=1``)
and asserts both numeric correctness and the absence of hazards — the
proof that the exemptions on the annotation are honest.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.testing import lockset
from repro.testing.lockset import ConcurrencyHazard
from repro.train import GradBoard

WORKERS = 8
ROUNDS = 50


@pytest.fixture
def sanitizer():
    """Arm for one test; leave a session-wide arming untouched."""
    was_armed = lockset.armed()
    lockset.arm()
    yield
    if not was_armed:
        lockset.disarm()


class TestGradBoardHammer:
    def test_concurrent_publish_is_race_clean(self, sanitizer, rng):
        params = [Parameter(rng.normal(size=(4, 3))), Parameter(rng.normal(size=(5,)))]
        board = GradBoard(params, workers=WORKERS, shared=False)
        grads = [
            [np.full_like(param.data, float(rank + 1)) for param in params]
            for rank in range(WORKERS)
        ]
        start = threading.Barrier(WORKERS)
        published = threading.Barrier(WORKERS + 1)
        reduced = threading.Barrier(WORKERS + 1)
        hazards: list = []
        totals: list = []

        def publisher(rank):
            try:
                start.wait()
                for _ in range(ROUNDS):
                    # Each rank writes only its own slot — the lock-free
                    # layout the board's exemptions declare.
                    for i, grad in enumerate(grads[rank]):
                        np.copyto(board._grads[rank][i], grad)
                        board._flags[rank, i] = 1
                    board._losses[rank] = float(rank + 1)
                    board._has_loss[rank] = 1
                    published.wait()
                    reduced.wait()
            except ConcurrencyHazard as hazard:  # pragma: no cover
                hazards.append(hazard)
                published.abort()
                reduced.abort()

        threads = [
            threading.Thread(target=publisher, args=(rank,))
            for rank in range(WORKERS)
        ]
        for thread in threads:
            thread.start()
        expected_total = sum(range(1, WORKERS + 1))
        for _ in range(ROUNDS):
            published.wait()
            totals.append(board.reduce_into())
            reduced.wait()
        for thread in threads:
            thread.join()

        assert hazards == []
        assert totals == [float(expected_total)] * ROUNDS
        for i, param in enumerate(params):
            expected = sum(grads[rank][i] for rank in range(WORKERS))
            assert np.array_equal(param.grad, expected)
        assert board.rounds == ROUNDS
        board.close()

    def test_publish_api_under_sanitizer(self, sanitizer, rng):
        # The public publish() path mutates param.grad, so it cannot run
        # from concurrent threads on one param set — but it must stay
        # hazard-free when each rank publishes sequentially, as the
        # inline backend does with the sanitizer armed.
        params = [Parameter(rng.normal(size=(3, 3)))]
        board = GradBoard(params, workers=4, shared=False)
        for round_index in range(ROUNDS):
            for rank in range(4):
                params[0].grad = np.full_like(params[0].data, float(rank))
                board.publish(rank, float(rank))
            total = board.reduce_into()
            assert total == 0.0 + 1.0 + 2.0 + 3.0
        assert board.rounds == ROUNDS
        board.close()
