"""Differential tests for data-parallel training.

The contract from :mod:`repro.train.parallel`: with one worker a
data-parallel run is *bit-identical* to serial training (both backends),
the fork and inline backends are bit-identical to each other at any
worker count, and multi-worker runs track the serial loss trajectory to
tight numerical tolerance (the only difference being the float
summation order of the sharded gradients).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IMCAT, IMCATConfig, IMCATTrainConfig, IMCATTrainer
from repro.data import generate_preset, split_dataset
from repro.models import BPRMF, TrainConfig, fit_bpr

EPOCHS = 3


@pytest.fixture(scope="module")
def dp_split():
    dataset = generate_preset("hetrec-del", scale=0.03, seed=21)
    return dataset, split_dataset(dataset, seed=22)


def make_bprmf(dp_split):
    dataset, _ = dp_split
    return BPRMF(dataset.num_users, dataset.num_items, 16, np.random.default_rng(3))


def make_imcat(dp_split):
    dataset, split = dp_split
    rng = np.random.default_rng(3)
    backbone = BPRMF(dataset.num_users, dataset.num_items, 16, rng)
    return IMCAT(
        backbone, dataset, split.train,
        IMCATConfig(num_intents=2, pretrain_epochs=1, cluster_refresh_every=5),
        rng=rng,
    )


def bpr_config(**overrides):
    defaults = dict(epochs=EPOCHS, batch_size=128, eval_every=2, seed=5)
    defaults.update(overrides)
    return TrainConfig(**defaults)


def imcat_config(**overrides):
    return IMCATTrainConfig(epochs=EPOCHS, batch_size=128, eval_every=2,
                            seed=5, **overrides)


def assert_states_equal(model_a, model_b):
    state_a, state_b = model_a.state_dict(), model_b.state_dict()
    assert sorted(state_a) == sorted(state_b)
    for name, array in state_a.items():
        assert np.array_equal(array, state_b[name]), f"parameter {name} diverged"


def run_bpr(dp_split, **overrides):
    _, split = dp_split
    model = make_bprmf(dp_split)
    result = fit_bpr(model, split, bpr_config(**overrides))
    return model, result


def run_imcat(dp_split, **overrides):
    _, split = dp_split
    model = make_imcat(dp_split)
    result = IMCATTrainer(model, split, imcat_config(**overrides)).fit()
    return model, result


class TestBprEquivalence:
    @pytest.mark.parametrize("backend", ["inline", "fork"])
    def test_one_worker_is_bitwise_serial(self, dp_split, backend):
        serial_model, serial = run_bpr(dp_split)
        dp_model, dp = run_bpr(dp_split, dp_workers=1, dp_backend=backend)
        assert dp.history == serial.history
        assert_states_equal(dp_model, serial_model)

    def test_fork_matches_inline_multiworker(self, dp_split):
        inline_model, inline = run_bpr(
            dp_split, dp_workers=3, dp_backend="inline"
        )
        fork_model, fork = run_bpr(dp_split, dp_workers=3, dp_backend="fork")
        assert fork.history == inline.history
        assert_states_equal(fork_model, inline_model)

    def test_multiworker_rerun_is_deterministic(self, dp_split):
        model_a, result_a = run_bpr(dp_split, dp_workers=3, dp_backend="fork")
        model_b, result_b = run_bpr(dp_split, dp_workers=3, dp_backend="fork")
        assert result_a.history == result_b.history
        assert_states_equal(model_a, model_b)

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_multiworker_tracks_serial_trajectory(self, dp_split, seed):
        # Multi-worker runs shard the per-batch gradient sum, so bits may
        # differ from serial — but only by summation order.  The loss
        # trajectory must stay within float-reassociation distance.
        _, serial = run_bpr(dp_split, seed=seed)
        _, dp = run_bpr(dp_split, seed=seed, dp_workers=3, dp_backend="fork")
        serial_losses = [record["loss"] for record in serial.history]
        dp_losses = [record["loss"] for record in dp.history]
        np.testing.assert_allclose(dp_losses, serial_losses, rtol=1e-6)


class TestImcatEquivalence:
    @pytest.mark.parametrize("backend", ["inline", "fork"])
    def test_one_worker_is_bitwise_serial(self, dp_split, backend):
        # EPOCHS=3 > pretrain_epochs=1 crosses the clustering activation
        # and periodic refreshes inside the data-parallel epochs.
        serial_model, serial = run_imcat(dp_split)
        dp_model, dp = run_imcat(dp_split, dp_workers=1, dp_backend=backend)
        assert dp.history == serial.history
        assert_states_equal(dp_model, serial_model)

    def test_fused_dp_is_bitwise_serial_eager(self, dp_split):
        # The full stack: fused kernels + data-parallel workers against
        # the plain serial eager loop — still the same bits.
        serial_model, serial = run_imcat(dp_split)
        dp_model, dp = run_imcat(
            dp_split, fused=True, dp_workers=1, dp_backend="fork"
        )
        assert dp.history == serial.history
        assert_states_equal(dp_model, serial_model)

    def test_fork_matches_inline_multiworker(self, dp_split):
        inline_model, inline = run_imcat(
            dp_split, dp_workers=3, dp_backend="inline"
        )
        fork_model, fork = run_imcat(dp_split, dp_workers=3, dp_backend="fork")
        assert fork.history == inline.history
        assert_states_equal(fork_model, inline_model)

    def test_multiworker_tracks_serial_trajectory(self, dp_split):
        _, serial = run_imcat(dp_split)
        _, dp = run_imcat(
            dp_split, fused=True, dp_workers=3, dp_backend="fork"
        )
        serial_losses = [record["loss"] for record in serial.history]
        dp_losses = [record["loss"] for record in dp.history]
        np.testing.assert_allclose(dp_losses, serial_losses, rtol=1e-6)
