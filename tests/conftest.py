"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data import generate_preset, split_dataset

from .helpers import tiny_dataset


@pytest.fixture(scope="session", autouse=True)
def _lockset_sanitizer():
    """Run the whole suite under the lockset sanitizer when asked.

    ``REPRO_SANITIZE=1`` arms :mod:`repro.testing.lockset` for the
    session: every ``new_lock`` becomes a SanitizedLock feeding the
    lock-order watchdog, and every ``@shared_state`` write runs the
    Eraser lockset check.  The obs module globals are re-created after
    arming because their locks were built at import time, before the
    sanitized factory was installed.
    """
    if os.environ.get("REPRO_SANITIZE") != "1":
        yield
        return
    from repro import obs
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.spans import Tracer
    from repro.testing import lockset

    lockset.arm()
    previous_metrics = obs.set_metrics(MetricsRegistry())
    previous_tracer = obs.set_tracer(Tracer(enabled=False))
    try:
        yield
    finally:
        obs.set_metrics(previous_metrics)
        obs.set_tracer(previous_tracer)
        lockset.disarm()


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def tiny():
    return tiny_dataset()


@pytest.fixture(scope="session")
def small_dataset():
    """A generated dataset large enough for training smoke tests."""
    return generate_preset("hetrec-del", scale=0.05, seed=1)


@pytest.fixture(scope="session")
def small_split(small_dataset):
    return split_dataset(small_dataset, seed=2)
