"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate_preset, split_dataset

from .helpers import tiny_dataset


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def tiny():
    return tiny_dataset()


@pytest.fixture(scope="session")
def small_dataset():
    """A generated dataset large enough for training smoke tests."""
    return generate_preset("hetrec-del", scale=0.05, seed=1)


@pytest.fixture(scope="session")
def small_split(small_dataset):
    return split_dataset(small_dataset, seed=2)
