"""Chaos under load: Zipf traffic vs a 4-worker pool taking real hits.

The scale-out acceptance suite: a seeded Zipf trace is driven against a
pool of checkpoint-backed workers while :mod:`repro.testing` injects a
worker crash, a slow shard, a pool-wide scoring outage, and a mid-run
checkpoint hot reload.  The run must end with **zero errored
responses**, the degradation-rung budget respected, and a complete obs
audit trail (pool + per-shard latency histograms, breaker-transition
counters on the workers that took the scoring outage).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import testing
from repro.ckpt import CheckpointManager
from repro.models import BPRMF
from repro.obs import MetricsRegistry
from repro.serve import (
    SLO,
    CheckpointModelProvider,
    CircuitBreaker,
    FaultWindow,
    RecommendationService,
    RetryPolicy,
    ShardedService,
    ZipfTraffic,
    run_load,
)

from .test_breaker import FakeClock

NUM_USERS, NUM_ITEMS, DIM = 64, 16, 8
FINGERPRINT = "fp-load"
POPULARITY = np.arange(NUM_ITEMS, dtype=np.float64)


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    testing.reset()


def make_model(seed: int = 0) -> BPRMF:
    return BPRMF(NUM_USERS, NUM_ITEMS, DIM, rng=np.random.default_rng(seed))


def snapshot(model: BPRMF, step: int) -> dict:
    return {
        "fingerprint": FINGERPRINT,
        "step": step,
        "model": model.state_dict(),
    }


def make_checkpoint_pool(tmp_path, num_workers=4, metrics=None):
    """A pool whose workers all hot-reload from one checkpoint dir."""
    manager = CheckpointManager(str(tmp_path))
    manager.save(snapshot(make_model(seed=1), 1), step=1)
    clock = FakeClock()
    workers = []
    for _ in range(num_workers):
        provider = CheckpointModelProvider(str(tmp_path), builder=make_model)
        workers.append(
            RecommendationService(
                provider,
                popularity=POPULARITY,
                default_top_n=3,
                retry=RetryPolicy(max_attempts=2, base_delay=0.01),
                breaker=CircuitBreaker(
                    failure_threshold=2, recovery_time=5.0, clock=clock
                ),
                clock=clock,
                sleep=clock.advance,
            )
        )
    pool = ShardedService(
        workers, popularity=POPULARITY, clock=clock, down_cooldown=0.5,
        metrics=metrics,
    )
    pool.poll_reload()  # load step-1 everywhere before taking traffic
    return pool, manager, clock


def run_chaos(tmp_path, *, faults, requests=160, seed=7, metrics=None):
    metrics = metrics if metrics is not None else MetricsRegistry()
    pool, manager, clock = make_checkpoint_pool(tmp_path, metrics=metrics)
    # A newer checkpoint sits ready for any mid-run "reload" window.
    manager.save(snapshot(make_model(seed=2), 2), step=2)
    traffic = ZipfTraffic(NUM_USERS, requests, rps=400.0, skew=1.1, seed=seed)
    report = run_load(
        pool,
        traffic,
        concurrency=6,
        pace=False,
        faults=faults,
        top_n=3,
        metrics=metrics,
        clock=clock,
        sleep=lambda _s: None,
    )
    return pool, report


CHAOS = (
    FaultWindow(30, 60, "worker-crash", worker=0),
    FaultWindow(70, 100, "worker-slow", worker=1, seconds=0.001),
    FaultWindow(110, 111, "reload"),
    FaultWindow(120, 150, "score-crash"),
)


class TestChaosUnderLoad:
    def test_zero_errors_and_rung_budget_under_full_chaos(self, tmp_path):
        """Crash + slow shard + scoring outage + hot reload in one run:
        every request answered, most of them live."""
        _, report = run_chaos(tmp_path, faults=CHAOS)
        stats = report.summary()
        assert stats["requests"] == 160
        assert stats["errors"] == 0
        report.assert_slo(
            SLO(p99_seconds=5.0, max_errors=0,
                min_live_fraction=0.5, max_popularity_fraction=0.35)
        )

    def test_worker_crash_window_forces_reroutes(self, tmp_path):
        _, report = run_chaos(
            tmp_path, faults=(FaultWindow(0, 160, "worker-crash", worker=0),)
        )
        stats = report.summary()
        assert stats["errors"] == 0
        assert stats["rerouted"] >= 1
        # Worker 0 never answers while its site crashes every dispatch.
        assert "0" not in stats["responses_by_worker"]

    def test_mid_run_reload_swaps_every_worker_to_the_new_checkpoint(
        self, tmp_path
    ):
        pool, report = run_chaos(
            tmp_path, faults=(FaultWindow(80, 81, "reload"),)
        )
        assert report.summary()["errors"] == 0
        versions = [w.provider.version() for w in pool.workers]
        assert versions == ["ckpt-step-2"] * 4

    def test_scoring_outage_trips_breakers_but_never_errors(self, tmp_path):
        pool, report = run_chaos(
            tmp_path, faults=(FaultWindow(0, 160, "score-crash"),)
        )
        stats = report.summary()
        assert stats["errors"] == 0
        # No stale answers exist (nothing ever scored live), so the
        # whole run rides the popularity rung.
        assert stats["responses_by_level"]["live"] == 0
        assert stats["responses_by_level"]["popularity"] == 160
        opened = [
            w.counters.get("serve.breaker.open") for w in pool.workers
        ]
        assert all(count >= 1 for count in opened)


class TestAuditTrail:
    def test_obs_snapshot_carries_pool_and_per_shard_histograms(
        self, tmp_path
    ):
        metrics = MetricsRegistry()
        pool, report = run_chaos(tmp_path, faults=CHAOS, metrics=metrics)
        snap = report.metrics_snapshot
        assert snap["histograms"]["serve.pool.request_seconds"]["count"] == 160
        shard_counts = {
            shard: snap["histograms"]
            .get(f"serve.shard{shard}.request_seconds", {"count": 0})["count"]
            for shard in range(4)
        }
        assert all(count > 0 for count in shard_counts.values())
        frontdoor = report.summary()["responses_by_worker"].get("frontdoor", 0)
        assert sum(shard_counts.values()) + frontdoor == 160
        counters = snap["counters"]
        assert counters["serve.pool.requests"] == 160
        assert counters["serve.pool.worker_error"] >= 1

    def test_breaker_transitions_surface_in_worker_counters(self, tmp_path):
        pool, _ = run_chaos(
            tmp_path, faults=(FaultWindow(40, 120, "score-crash"),)
        )
        transitions = sum(
            w.counters.get("serve.breaker.open") for w in pool.workers
        )
        assert transitions >= 1


class TestSingleServiceHarness:
    def test_run_load_drives_a_plain_service_too(self, tmp_path):
        """The harness is pool-agnostic: workers=1 and no ``worker``
        attribution, same zero-error contract."""
        manager = CheckpointManager(str(tmp_path))
        manager.save(snapshot(make_model(seed=1), 1), step=1)
        clock = FakeClock()
        service = RecommendationService(
            CheckpointModelProvider(str(tmp_path), builder=make_model),
            popularity=POPULARITY,
            default_top_n=3,
            clock=clock,
            sleep=clock.advance,
        )
        service.poll_reload()
        traffic = ZipfTraffic(NUM_USERS, 60, rps=100.0, seed=3)
        report = run_load(
            service, traffic, concurrency=4, pace=False,
            faults=(FaultWindow(20, 40, "score-crash"),),
            metrics=MetricsRegistry(), clock=clock, sleep=lambda _s: None,
        )
        stats = report.summary()
        assert stats["workers"] == 1
        assert stats["errors"] == 0
        assert stats["responses_by_level"]["live"] > 0
