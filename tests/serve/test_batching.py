"""Micro-batcher properties: bit-identity, flush bounds, error fanout."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.perf import CounterRegistry
from repro.serve import MicroBatcher

from .test_service import FakeModel


class ScriptedModel(FakeModel):
    """Deterministic scores from pure elementwise numpy, so batched
    rows are guaranteed bit-identical to single-user rows and any
    ranking difference must come from the batcher itself."""

    def __init__(self, fail_times: int = 0):
        super().__init__(fail_times=fail_times)
        self.batch_sizes = []

    def all_scores(self, users):
        users = np.asarray(users, dtype=np.int64)
        self.batch_sizes.append(len(users))
        if self.calls_should_fail():
            raise RuntimeError("scoring backend down")
        items = np.arange(self.num_items, dtype=np.float64)
        return np.sin(users[:, None] * 1.7) * 3.0 + items[None, :] * 0.01

    def calls_should_fail(self):
        self.calls += 1
        return self.calls <= self.fail_times

    def recommend(self, user, top_n=20, exclude=None):
        from repro.eval.metrics import rank_items

        return rank_items(
            self.all_scores(np.asarray([user]))[0], exclude or set(), top_n
        )


def run_concurrently(workers):
    barrier = threading.Barrier(len(workers))
    errors = []

    def wrap(fn):
        barrier.wait()
        try:
            fn()
        except Exception as exc:  # noqa: BLE001 - recorded for the assert
            errors.append(exc)

    threads = [threading.Thread(target=wrap, args=(fn,)) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


class TestBitIdentity:
    @pytest.mark.parametrize("callers,max_batch", [(1, 4), (4, 4), (7, 3),
                                                   (16, 8), (9, 1)])
    def test_any_interleaving_matches_unbatched(self, callers, max_batch):
        """Whatever batches the scheduler produces, every caller gets
        exactly the unbatched ``model.recommend`` answer."""
        model = ScriptedModel()
        reference = ScriptedModel()
        batcher = MicroBatcher(
            lambda: model, max_batch=max_batch, max_wait=0.002
        )
        results = {}

        def call(user):
            def run():
                results[user] = batcher.recommend(
                    user, top_n=5, exclude={user % 3}
                )
            return run

        errors = run_concurrently([call(u) for u in range(callers)])
        assert not errors
        for user in range(callers):
            np.testing.assert_array_equal(
                results[user],
                reference.recommend(user, top_n=5, exclude={user % 3}),
            )

    def test_repeated_rounds_with_thread_churn(self):
        """Multiple rounds with different caller counts — the batcher
        must stay correct as leadership changes hands."""
        model = ScriptedModel()
        reference = ScriptedModel()
        batcher = MicroBatcher(lambda: model, max_batch=4, max_wait=0.001)
        for round_id, callers in enumerate((3, 8, 1, 5)):
            results = {}

            def call(user):
                def run():
                    results[user] = batcher.recommend(user, top_n=4)
                return run

            users = [round_id * 10 + i for i in range(callers)]
            assert not run_concurrently([call(u) for u in users])
            for user in users:
                np.testing.assert_array_equal(
                    results[user], reference.recommend(user, top_n=4)
                )


class TestFlushBounds:
    def test_max_wait_flush_always_fires_for_a_lone_request(self):
        """A single request must not starve waiting for company: the
        max-wait window flushes a partial (even singleton) batch."""
        model = ScriptedModel()
        batcher = MicroBatcher(lambda: model, max_batch=64, max_wait=0.01)
        items = batcher.recommend(2, top_n=3)
        assert items.size == 3
        assert model.batch_sizes == [1]

    def test_batches_never_exceed_max_batch(self):
        model = ScriptedModel()
        batcher = MicroBatcher(lambda: model, max_batch=4, max_wait=0.05)

        def call(user):
            def run():
                batcher.recommend(user, top_n=2)
            return run

        assert not run_concurrently([call(u) for u in range(17)])
        assert sum(model.batch_sizes) == 17
        assert max(model.batch_sizes) <= 4

    def test_concurrent_callers_actually_coalesce(self):
        """Under a generous wait window, simultaneous callers must end
        up sharing scoring calls (fewer flushes than requests)."""
        model = ScriptedModel()
        counters = CounterRegistry()
        batcher = MicroBatcher(
            lambda: model, max_batch=8, max_wait=0.05, counters=counters
        )

        def call(user):
            def run():
                batcher.recommend(user, top_n=2)
            return run

        assert not run_concurrently([call(u) for u in range(8)])
        assert counters.get("serve.batch.requests") == 8
        assert counters.get("serve.batch.flushes") < 8

    def test_validates_construction(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda: None, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda: None, max_wait=-1.0)


class TestFailureFanout:
    def test_scoring_error_reaches_every_caller(self):
        model = ScriptedModel(fail_times=10**9)
        batcher = MicroBatcher(lambda: model, max_batch=4, max_wait=0.01)

        def call(user):
            def run():
                batcher.recommend(user, top_n=2)
            return run

        errors = run_concurrently([call(u) for u in range(4)])
        assert len(errors) == 4
        assert all("backend down" in str(e) for e in errors)

    def test_batcher_recovers_after_a_failed_batch(self):
        model = ScriptedModel(fail_times=1)
        batcher = MicroBatcher(lambda: model, max_batch=4, max_wait=0.005)
        with pytest.raises(RuntimeError):
            batcher.recommend(1, top_n=2)
        items = batcher.recommend(1, top_n=2)
        assert items.size == 2

    def test_model_fn_resolved_at_flush_time(self):
        """Hot reload between batches is honoured: the batcher scores
        with whatever the provider holds *now*."""
        slot = {"model": ScriptedModel()}
        batcher = MicroBatcher(
            lambda: slot["model"], max_batch=2, max_wait=0.001
        )
        batcher.recommend(1, top_n=2)
        replacement = ScriptedModel()
        slot["model"] = replacement
        batcher.recommend(2, top_n=2)
        assert replacement.batch_sizes == [1]
