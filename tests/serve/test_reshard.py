"""Live resharding: growing the pool N→N+1 while requests are in flight.

``ShardedService.grow`` swaps in a jump-consistent ``ShardMap`` one
shard wider.  The properties under test: the swap is atomic from a
client's perspective (no request ever errors or indexes a missing
worker), only ~1/(N+1) of users move, and every mover lands on the
*new* shard — nobody else is shuffled.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import testing
from repro.serve import LEVEL_LIVE, ShardMap

from .test_breaker import FakeClock
from .test_service import make_service
from .test_shard import WideModel, make_pool

USERS = range(2_000)


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    testing.reset()


class TestGrow:
    def test_grow_widens_the_map_and_returns_the_new_shard(self):
        pool, workers, clock = make_pool(num_workers=3)
        new_shard = pool.grow(make_service(WideModel(), clock=clock))
        assert new_shard == 3
        assert pool.shard_map.num_shards == 4
        assert len(pool.workers) == 4
        assert pool._registry().get("serve.pool.grown") == 1

    def test_only_movers_change_shard_and_all_land_on_the_new_one(self):
        pool, _, clock = make_pool(num_workers=4)
        before = {user: pool.shard_map.shard_of(user) for user in USERS}
        pool.grow(make_service(WideModel(), clock=clock))
        moved = 0
        for user in USERS:
            after = pool.shard_map.shard_of(user)
            if after != before[user]:
                assert after == 4  # movers only ever go to the new shard
                moved += 1
        # Jump-consistent growth moves ~1/(N+1) of keys (here 1/5).
        assert 0.10 * len(USERS) < moved < 0.30 * len(USERS)

    def test_grown_shard_actually_serves_its_users(self):
        pool, _, clock = make_pool(num_workers=2)
        new_shard = pool.grow(make_service(WideModel(), clock=clock))
        movers = [
            user for user in USERS
            if pool.shard_map.shard_of(user) == new_shard
        ]
        assert movers  # growth that routes nobody would be vacuous
        for user in movers[:20]:
            response = pool.recommend(user, top_n=3)
            assert response.level == LEVEL_LIVE
            assert response.worker == new_shard

    def test_seed_is_preserved_across_growth(self):
        pool, _, clock = make_pool(num_workers=3, shard_map=ShardMap(3, seed=9))
        pool.grow(make_service(WideModel(), clock=clock))
        assert pool.shard_map.seed == 9
        assert pool.shard_map.num_shards == 4


class TestGrowUnderTraffic:
    def test_no_request_errors_while_the_pool_grows(self):
        pool, _, clock = make_pool(num_workers=2)
        errors = []
        responses = []
        lock = threading.Lock()
        stop = threading.Event()

        def client(offset):
            user = offset
            while not stop.is_set():
                try:
                    response = pool.recommend(user % 1_000, top_n=3)
                except BaseException as err:  # any error fails the test
                    with lock:
                        errors.append(err)
                    return
                with lock:
                    responses.append(response)
                user += 7

        threads = [
            threading.Thread(target=client, args=(offset,))
            for offset in range(4)
        ]
        for thread in threads:
            thread.start()
        final_mark = 0
        try:
            # Grow the pool three times while the clients are hammering,
            # letting a burst of *post-growth* requests land each time.
            for _ in range(3):
                with lock:
                    mark = len(responses)
                pool.grow(make_service(WideModel(), clock=clock))
                final_mark = mark
                while True:
                    with lock:
                        seen = len(responses)
                    if seen >= mark + 200:
                        break
                    time.sleep(0.001)
        finally:
            stop.set()
            for thread in threads:
                thread.join()

        assert errors == []
        assert all(r.level == LEVEL_LIVE for r in responses)
        assert pool.shard_map.num_shards == 5
        # The widened map is actually in use: requests issued after the
        # final grow reach shards that did not exist at pool creation.
        post_growth_workers = {r.worker for r in responses[final_mark:]}
        assert post_growth_workers >= {0, 1}
        assert any(shard >= 2 for shard in post_growth_workers)

    def test_routing_is_consistent_after_concurrent_growth(self):
        pool, _, clock = make_pool(num_workers=3)
        pool.grow(make_service(WideModel(), clock=clock))
        for user in range(200):
            expected = pool.shard_map.shard_of(user)
            assert pool.recommend(user, top_n=2).worker == expected
