"""Regression hammers for the serving-layer races fixed by the
concurrency pass.

Each test targets a specific pre-fix bug shape: the TTLCache was wholly
unsynchronized (concurrent eviction/expiry could double-delete), the
breaker's half-open probe budget was a check-then-act (two threads could
both win a one-probe budget), and the service's popularity table was
lazily built outside any lock (two degraded requests could both build
it).  They run green against the locked implementations — and stay
meaningful under ``REPRO_SANITIZE=1``, where the lockset sanitizer would
flag any regression even if the hammer got lucky on timing.
"""

from __future__ import annotations

import threading

import numpy as np

from repro import testing
from repro.obs import MetricsRegistry
from repro.serve import (
    LEVEL_LIVE,
    LEVEL_POPULARITY,
    LEVEL_STALE,
    CircuitBreaker,
    ShardedService,
    TTLCache,
)

from .test_breaker import FakeClock
from .test_service import POPULARITY, FakeModel, make_service
from .test_shard import WideModel

THREADS = 8
ITERS = 400


def _run_threads(worker, count=THREADS):
    barrier = threading.Barrier(count)
    errors = []

    def wrapped(index):
        barrier.wait()
        try:
            worker(index)
        except Exception as exc:  # noqa: BLE001 - recorded and re-raised
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestTTLCacheConcurrency:
    def test_mixed_put_get_purge_stays_consistent(self):
        cache = TTLCache(max_entries=16, ttl=60.0)

        def worker(index):
            for step in range(ITERS):
                key = (index, step % 24)
                cache.put(key, step)
                value = cache.get(key)
                assert value is None or value == step
                if step % 50 == 0:
                    cache.purge_expired()

        _run_threads(worker)
        assert len(cache) <= 16

    def test_concurrent_expiry_of_one_key(self):
        """Pre-fix, two readers of an expired key raced the delete."""
        clock = FakeClock()
        cache = TTLCache(max_entries=8, ttl=1.0, clock=clock)
        cache.put("hot", 42)
        clock.advance(5.0)

        def worker(_index):
            for _ in range(ITERS):
                assert cache.get("hot") is None

        _run_threads(worker)
        assert len(cache) == 0

    def test_concurrent_eviction_pressure(self):
        cache = TTLCache(max_entries=4, ttl=60.0)

        def worker(index):
            for step in range(ITERS):
                cache.put((index, step), step)

        _run_threads(worker)
        assert len(cache) <= 4


class TestCircuitBreakerConcurrency:
    def _tripped_breaker(self, clock, **kwargs):
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_time=5.0, clock=clock, **kwargs
        )
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(10.0)  # past recovery: next allow() probes
        return breaker

    def test_half_open_probe_budget_not_oversubscribed(self):
        """Pre-fix bug: ``allow`` checked the probe budget and then
        incremented it without a lock, so two threads could both pass a
        one-probe gate and hammer the recovering backend."""
        clock = FakeClock()
        breaker = self._tripped_breaker(clock, half_open_probes=1)
        admitted = []

        def worker(_index):
            if breaker.allow():
                admitted.append(1)

        _run_threads(worker)
        assert sum(admitted) == 1

    def test_single_open_transition_under_failure_storm(self):
        transitions = []
        breaker = CircuitBreaker(
            failure_threshold=3,
            recovery_time=1000.0,
            clock=FakeClock(),
            on_transition=lambda old, new: transitions.append((old, new)),
        )

        def worker(_index):
            for _ in range(ITERS):
                breaker.record_failure()

        _run_threads(worker)
        assert transitions == [("closed", "open")]

    def test_no_lost_failure_counts(self):
        breaker = CircuitBreaker(
            failure_threshold=THREADS * ITERS,
            recovery_time=1000.0,
            clock=FakeClock(),
        )

        def worker(_index):
            for _ in range(ITERS):
                breaker.record_failure()

        _run_threads(worker)
        assert breaker.state == "open"  # exactly at the threshold


class TestServiceConcurrency:
    def test_lazy_popularity_builds_exactly_once(self):
        """Pre-fix, two degraded requests could both observe ``None``
        and build (then clobber) the popularity table."""
        service = make_service(FakeModel(), popularity=None)
        results = [None] * THREADS

        def worker(index):
            results[index] = service._popularity_scores()

        _run_threads(worker)
        identities = {id(scores) for scores in results}
        assert len(identities) == 1
        np.testing.assert_array_equal(
            results[0], np.zeros(FakeModel.num_items)
        )

    def test_request_counter_monotonic_under_load(self):
        service = make_service(FakeModel())

        def worker(_index):
            for _ in range(50):
                service.recommend(1)

        _run_threads(worker, count=4)
        assert service._requests_seen == 4 * 50


class TestShardedPoolConcurrency:
    """Multi-shard hammers: the front door's shared state (down-list,
    stale cache, metrics) under concurrent clients and chaos.  Run with
    ``REPRO_SANITIZE=1`` these double as lockset-sanitizer probes."""

    USERS = list(range(16))

    def _make_pool(self, **kwargs):
        clock = FakeClock()
        workers = [
            make_service(WideModel(), clock=clock) for _ in range(4)
        ]
        defaults = dict(
            popularity=POPULARITY, clock=clock, metrics=MetricsRegistry()
        )
        defaults.update(kwargs)
        return ShardedService(workers, **defaults), clock

    def test_mark_down_reroute_hammer(self):
        """Every dispatch to worker 0 crashes while 8 clients hammer:
        the down-list bookkeeping must not lose the never-error
        contract or a single response."""
        pool, _ = self._make_pool(down_cooldown=0.0)
        responses = []
        record_lock = threading.Lock()

        def worker(index):
            local = []
            for step in range(100):
                response = pool.recommend(self.USERS[step % 16], top_n=3)
                assert response.level in (LEVEL_LIVE, LEVEL_STALE,
                                          LEVEL_POPULARITY)
                local.append(response.worker)
            with record_lock:
                responses.extend(local)

        with testing.CrashPoint(testing.worker_site(0), at=1, every=1):
            _run_threads(worker)
        testing.reset()
        assert len(responses) == THREADS * 100
        assert 0 not in responses  # crashed shard never answered

    def test_front_door_ttl_expiry_races_popularity_fallback(self):
        """Stale entries expire *while* every worker is down and eight
        clients read them: the pre-fix TTLCache double-delete shape, on
        the pool's own cache, with the popularity rung as the landing
        zone.  One thread ages the clock mid-hammer."""
        pool, clock = self._make_pool(down_cooldown=1000.0, stale_ttl=1.0)
        for user in self.USERS:  # warm the front-door stale cache
            assert pool.recommend(user, top_n=3).level == LEVEL_LIVE
        seen = [set() for _ in range(THREADS)]

        def worker(index):
            for step in range(150):
                if index == 0 and step % 10 == 0:
                    clock.advance(0.2)  # expire entries mid-traffic
                response = pool.recommend(self.USERS[step % 16], top_n=3)
                assert response.worker is None  # all shards down
                assert response.level in (LEVEL_STALE, LEVEL_POPULARITY)
                assert response.items.size == 3
                seen[index].add(response.level)

        with testing.CrashPoint(testing.SERVE_WORKER, at=1, every=1):
            _run_threads(worker)
        testing.reset()
        # The clock thread aged every entry past the 1s TTL, so the
        # ladder's last rung was really exercised...
        assert any(LEVEL_POPULARITY in levels for levels in seen)
        # ...and nothing re-populated the cache while workers were down.
        assert len(pool.stale_cache) == 0

    def test_metrics_counts_are_exact_under_concurrency(self):
        pool, _ = self._make_pool()
        total = THREADS * 50

        def worker(index):
            for step in range(50):
                pool.recommend((index * 50 + step) % 64, top_n=2)

        _run_threads(worker)
        metrics = pool._registry()
        assert metrics.get("serve.pool.requests") == total
        assert metrics.get("serve.pool.responses.live") == total
        histogram = metrics.histogram("serve.pool.request_seconds")
        assert histogram.count == total
