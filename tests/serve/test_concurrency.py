"""Regression hammers for the serving-layer races fixed by the
concurrency pass.

Each test targets a specific pre-fix bug shape: the TTLCache was wholly
unsynchronized (concurrent eviction/expiry could double-delete), the
breaker's half-open probe budget was a check-then-act (two threads could
both win a one-probe budget), and the service's popularity table was
lazily built outside any lock (two degraded requests could both build
it).  They run green against the locked implementations — and stay
meaningful under ``REPRO_SANITIZE=1``, where the lockset sanitizer would
flag any regression even if the hammer got lucky on timing.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.serve import CircuitBreaker, TTLCache

from .test_breaker import FakeClock
from .test_service import FakeModel, make_service

THREADS = 8
ITERS = 400


def _run_threads(worker, count=THREADS):
    barrier = threading.Barrier(count)
    errors = []

    def wrapped(index):
        barrier.wait()
        try:
            worker(index)
        except Exception as exc:  # noqa: BLE001 - recorded and re-raised
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestTTLCacheConcurrency:
    def test_mixed_put_get_purge_stays_consistent(self):
        cache = TTLCache(max_entries=16, ttl=60.0)

        def worker(index):
            for step in range(ITERS):
                key = (index, step % 24)
                cache.put(key, step)
                value = cache.get(key)
                assert value is None or value == step
                if step % 50 == 0:
                    cache.purge_expired()

        _run_threads(worker)
        assert len(cache) <= 16

    def test_concurrent_expiry_of_one_key(self):
        """Pre-fix, two readers of an expired key raced the delete."""
        clock = FakeClock()
        cache = TTLCache(max_entries=8, ttl=1.0, clock=clock)
        cache.put("hot", 42)
        clock.advance(5.0)

        def worker(_index):
            for _ in range(ITERS):
                assert cache.get("hot") is None

        _run_threads(worker)
        assert len(cache) == 0

    def test_concurrent_eviction_pressure(self):
        cache = TTLCache(max_entries=4, ttl=60.0)

        def worker(index):
            for step in range(ITERS):
                cache.put((index, step), step)

        _run_threads(worker)
        assert len(cache) <= 4


class TestCircuitBreakerConcurrency:
    def _tripped_breaker(self, clock, **kwargs):
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_time=5.0, clock=clock, **kwargs
        )
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(10.0)  # past recovery: next allow() probes
        return breaker

    def test_half_open_probe_budget_not_oversubscribed(self):
        """Pre-fix bug: ``allow`` checked the probe budget and then
        incremented it without a lock, so two threads could both pass a
        one-probe gate and hammer the recovering backend."""
        clock = FakeClock()
        breaker = self._tripped_breaker(clock, half_open_probes=1)
        admitted = []

        def worker(_index):
            if breaker.allow():
                admitted.append(1)

        _run_threads(worker)
        assert sum(admitted) == 1

    def test_single_open_transition_under_failure_storm(self):
        transitions = []
        breaker = CircuitBreaker(
            failure_threshold=3,
            recovery_time=1000.0,
            clock=FakeClock(),
            on_transition=lambda old, new: transitions.append((old, new)),
        )

        def worker(_index):
            for _ in range(ITERS):
                breaker.record_failure()

        _run_threads(worker)
        assert transitions == [("closed", "open")]

    def test_no_lost_failure_counts(self):
        breaker = CircuitBreaker(
            failure_threshold=THREADS * ITERS,
            recovery_time=1000.0,
            clock=FakeClock(),
        )

        def worker(_index):
            for _ in range(ITERS):
                breaker.record_failure()

        _run_threads(worker)
        assert breaker.state == "open"  # exactly at the threshold


class TestServiceConcurrency:
    def test_lazy_popularity_builds_exactly_once(self):
        """Pre-fix, two degraded requests could both observe ``None``
        and build (then clobber) the popularity table."""
        service = make_service(FakeModel(), popularity=None)
        results = [None] * THREADS

        def worker(index):
            results[index] = service._popularity_scores()

        _run_threads(worker)
        identities = {id(scores) for scores in results}
        assert len(identities) == 1
        np.testing.assert_array_equal(
            results[0], np.zeros(FakeModel.num_items)
        )

    def test_request_counter_monotonic_under_load(self):
        service = make_service(FakeModel())

        def worker(_index):
            for _ in range(50):
                service.recommend(1)

        _run_threads(worker, count=4)
        assert service._requests_seen == 4 * 50
