"""Process-isolated worker pool: lifecycle, chaos, and bit-identity.

Each worker here is a real forked subprocess serving over the framed
socket transport, so these tests exercise genuine process death
(``SIGKILL``), genuine hangs (both child threads stalled), and genuine
respawns — not simulations.  Timings are tuned tight (50 ms supervisor
sweeps, sub-second heartbeat windows) to keep the suite fast while
still crossing real scheduler boundaries.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro import testing
from repro.models import BPRMF
from repro.obs import MetricsRegistry
from repro.serve import (
    LEVEL_LIVE,
    LEVEL_POPULARITY,
    ProcessPool,
    ProcWorker,
    RetryPolicy,
    WorkerSpec,
    WorkerUnavailable,
    build_service,
)

NUM_USERS, NUM_ITEMS, DIM = 32, 12, 6
POPULARITY = np.arange(NUM_ITEMS, dtype=np.float64)


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    testing.reset()


def make_model():
    return BPRMF(NUM_USERS, NUM_ITEMS, DIM, rng=np.random.default_rng(7))


def make_spec(**overrides):
    defaults = dict(
        builder=make_model,
        popularity=POPULARITY,
        default_top_n=3,
        breaker_recovery=0.1,
    )
    defaults.update(overrides)
    return WorkerSpec(**defaults)


def wait_until(predicate, timeout=8.0, interval=0.02):
    """Poll ``predicate`` until truthy; returns its final value."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    return predicate()


@pytest.fixture()
def pool():
    with ProcessPool(
        make_spec(),
        4,
        supervisor_interval=0.05,
        heartbeat_timeout=0.3,
        request_timeout=1.0,
        down_cooldown=0.1,
        metrics=MetricsRegistry(),
    ) as active:
        yield active


class TestLifecycle:
    def test_workers_start_and_serve_live(self, pool):
        for worker in pool.workers:
            assert worker.alive()
            assert worker.pid not in (None, os.getpid())
        response = pool.recommend(5, top_n=3)
        assert response.level == LEVEL_LIVE
        assert len(response.items) == 3
        assert response.worker == pool.shard_map.shard_of(5)

    def test_every_user_lands_on_their_shard(self, pool):
        for user in range(NUM_USERS):
            response = pool.recommend(user, top_n=2)
            assert response.level == LEVEL_LIVE
            assert response.worker == pool.shard_map.shard_of(user)

    def test_malformed_requests_still_raise_value_error(self, pool):
        with pytest.raises(ValueError):
            pool.recommend(-1)
        with pytest.raises(ValueError):
            pool.recommend(1, top_n=0)

    def test_worker_relays_child_side_value_error(self, pool):
        # Validation that only the child's service performs must come
        # back as ValueError, not as a worker failure.
        with pytest.raises(ValueError):
            pool.workers[0].recommend(user=NUM_USERS + 10, top_n=3)
        assert not pool.workers[0].broken()

    def test_health_and_ready_reflect_live_children(self, pool):
        assert pool.ready()
        health = pool.health()
        assert health["status"] == "ok"
        assert len(health["workers"]) == 4
        assert len(health["supervisor"]) == 4
        for entry in health["supervisor"]:
            assert entry["alive"] and not entry["disabled"]

    def test_shutdown_leaves_no_processes(self):
        pool = ProcessPool(make_spec(), 2, supervise=False)
        pids = [worker.pid for worker in pool.workers]
        pool.close()
        for worker in pool.workers:
            assert not worker.alive()
        for pid in pids:
            # After close every child must be reaped (waitpid would
            # raise ChildProcessError) or at least dead.
            with pytest.raises(OSError):
                os.kill(pid, 0)
        # Requests after close fail over to the popularity rung rather
        # than erroring: the never-error contract survives shutdown.
        response = pool.recommend(3, top_n=2)
        assert response.level == LEVEL_POPULARITY

    def test_slow_start_beyond_timeout_is_unavailable(self):
        spec = make_spec(start_delay=2.0)
        with pytest.raises(WorkerUnavailable):
            ProcessPool(spec, 2, start_timeout=0.3, supervise=False)

    def test_slow_start_within_timeout_succeeds(self):
        spec = make_spec(start_delay=0.2)
        with ProcessPool(spec, 1, start_timeout=5.0, supervise=False) as pool:
            assert pool.recommend(1, top_n=2).level == LEVEL_LIVE


class TestBitIdentity:
    def test_process_backend_matches_thread_backend(self):
        spec = make_spec()
        threaded = build_service(spec, 4, backend="thread")
        with build_service(
            spec, 4, backend="process", supervise=False
        ) as process:
            for user in range(NUM_USERS):
                exclude = [user % NUM_ITEMS] if user % 3 == 0 else None
                top_n = 2 + user % 4
                a = threaded.recommend(user, top_n=top_n, exclude=exclude)
                b = process.recommend(user, top_n=top_n, exclude=exclude)
                assert a.level == b.level == LEVEL_LIVE
                assert a.worker == b.worker
                assert a.model_version == b.model_version
                np.testing.assert_array_equal(a.items, b.items)


class TestChaos:
    def test_sigkill_is_detected_rerouted_and_respawned(self, pool):
        victim_user = 5
        victim = pool.shard_map.shard_of(victim_user)
        old_pid = pool.workers[victim].pid
        pool.inject_fault("proc-kill", worker=victim)
        wait_until(lambda: not pool.workers[victim].alive(), timeout=2.0)

        # The very next request must not error: the front door reroutes.
        response = pool.recommend(victim_user, top_n=3)
        assert response.level == LEVEL_LIVE
        assert response.worker != victim

        # The supervisor notices the corpse and respawns it.
        assert wait_until(
            lambda: pool.workers[victim].alive()
            and not pool.workers[victim].broken()
        )
        assert pool.workers[victim].pid != old_pid
        assert pool.metrics.get("serve.supervisor.restarts") >= 1

        # Traffic returns to the home shard once the cooldown lapses.
        assert wait_until(
            lambda: pool.recommend(victim_user, top_n=3).worker == victim
        )

    def test_hang_is_convicted_by_heartbeats_and_killed(self):
        metrics = MetricsRegistry()
        with ProcessPool(
            make_spec(),
            2,
            supervisor_interval=0.05,
            heartbeat_timeout=0.2,
            max_missed=2,
            request_timeout=0.5,
            down_cooldown=0.1,
            metrics=metrics,
        ) as pool:
            pool.inject_fault("proc-hang", worker=0, seconds=30.0)
            # Requests during the hang reroute within request_timeout.
            start = time.monotonic()
            response = pool.recommend(0, top_n=2) if (
                pool.shard_map.shard_of(0) == 0
            ) else pool.recommend(1, top_n=2)
            assert response.level == LEVEL_LIVE
            assert time.monotonic() - start < 5.0
            # Conviction: missed heartbeats -> SIGKILL -> respawn.
            assert wait_until(
                lambda: metrics.get("serve.supervisor.hangs") >= 1
            )
            assert wait_until(
                lambda: pool.workers[0].alive()
                and not pool.workers[0].broken()
            )
            assert metrics.get("serve.supervisor.heartbeat_misses") >= 2
            assert metrics.get("serve.supervisor.worker.0.restarts") >= 1

    def test_corrupt_frames_poison_reroute_and_recover(self, pool):
        victim_user = next(
            user for user in range(NUM_USERS)
            if pool.shard_map.shard_of(user) == 1
        )
        assert pool.inject_fault("proc-corrupt", worker=1, frames=1)
        response = pool.recommend(victim_user, top_n=3)
        assert response.level == LEVEL_LIVE
        assert response.worker != 1
        assert response.rerouted >= 1
        # The poisoned channel reads as down until the supervisor
        # replaces the worker.
        assert wait_until(
            lambda: pool.workers[1].alive() and not pool.workers[1].broken()
        )

    def test_restart_budget_trips_the_circuit(self):
        metrics = MetricsRegistry()
        with ProcessPool(
            make_spec(),
            2,
            supervisor_interval=0.05,
            heartbeat_timeout=0.3,
            restart_budget=2,
            budget_window=60.0,
            respawn_backoff=RetryPolicy(
                max_attempts=1, base_delay=0.02, multiplier=1.0,
                max_delay=0.02,
            ),
            down_cooldown=0.05,
            metrics=metrics,
        ) as pool:
            for round_index in range(2):
                pool.inject_fault("proc-kill", worker=0)
                # Wait for the respawn itself (the freshly killed
                # process can still look alive for a beat, so liveness
                # alone would race the supervisor).
                assert wait_until(
                    lambda want=round_index + 1: metrics.get(
                        "serve.supervisor.worker.0.restarts"
                    ) == want
                )
                assert wait_until(
                    lambda: pool.workers[0].alive()
                    and not pool.workers[0].broken()
                )
            # Third death within the window exhausts the budget.
            pool.inject_fault("proc-kill", worker=0)
            assert wait_until(
                lambda: metrics.get("serve.supervisor.disabled") >= 1
            )
            status = pool.supervisor.status()
            assert status[0]["disabled"]
            assert status[0]["restarts"] == 2
            # A disabled shard is routed around forever, never an error.
            for user in range(8):
                assert pool.recommend(user, top_n=2).level == LEVEL_LIVE

    def test_all_workers_dead_falls_back_to_popularity(self):
        with ProcessPool(
            make_spec(), 2, supervise=False, down_cooldown=5.0,
            request_timeout=0.5,
        ) as pool:
            for worker in pool.workers:
                os.kill(worker.pid, signal.SIGKILL)
            wait_until(lambda: not any(w.alive() for w in pool.workers),
                       timeout=2.0)
            response = pool.recommend(3, top_n=3)
            assert response.level == LEVEL_POPULARITY
            np.testing.assert_array_equal(
                response.items, [NUM_ITEMS - 1, NUM_ITEMS - 2, NUM_ITEMS - 3]
            )


class TestDrain:
    def test_shutdown_drains_inflight_requests(self):
        spec = make_spec()
        pool = ProcessPool(spec, 1, supervise=False, request_timeout=5.0)
        results = []

        def client():
            results.append(pool.workers[0].recommend(user=1, top_n=2))

        threads = [threading.Thread(target=client) for _ in range(4)]
        for thread in threads:
            thread.start()
        pool.close(drain=True)
        for thread in threads:
            thread.join()
        assert len(results) == 4
        assert all(r.level == LEVEL_LIVE for r in results)
        assert not pool.workers[0].alive()


class TestSupervisorUnit:
    def test_sweep_is_idempotent_on_healthy_workers(self, pool):
        before = [worker.pid for worker in pool.workers]
        for _ in range(5):
            pool.supervisor.sweep()
        assert [worker.pid for worker in pool.workers] == before
        assert all(not s["disabled"] for s in pool.supervisor.status())

    def test_status_reports_missed_and_respawn_eta(self, pool):
        entries = pool.supervisor.status()
        assert len(entries) == 4
        for index, entry in enumerate(entries):
            assert entry["worker"] == index
            assert entry["alive"] is True
            assert entry["missed"] == 0
            assert entry["respawn_in"] is None
