"""`python -m repro.serve` CLI smoke tests (tiny budgets)."""

from __future__ import annotations

import pytest

from repro import testing
from repro.serve.__main__ import build_parser, main

TINY = [
    "--dataset", "hetrec-del",
    "--method", "BPRMF",
    "--scale", "0.02",
    "--epochs", "1",
    "--embed-dim", "8",
    "--batch-size", "256",
    "--requests", "24",
]


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    testing.reset()


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.method == "BPRMF"
        assert args.requests == 40
        assert not args.chaos

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--method", "nope"])


class TestHealthyRun:
    def test_serves_all_requests(self, capsys):
        assert main(TINY) == 0
        out = capsys.readouterr().out
        assert "OK: every request answered" in out
        assert "serving perf" in out


class TestChaosRun:
    def test_degrades_but_never_errors(self, capsys):
        assert main(TINY + ["--chaos", "--deadline-ms", "50"]) == 0
        out = capsys.readouterr().out
        assert "level=popularity" in out or "level=stale" in out
        assert "OK: every request answered" in out


class TestCheckpointServing:
    def test_hot_reload_bootstrap(self, tmp_path, capsys):
        ckpt_dir = str(tmp_path / "ckpts")
        assert main(TINY + ["--checkpoint-dir", ckpt_dir]) == 0
        out = capsys.readouterr().out
        assert "hot-reload bootstrap: reloaded" in out
        assert "ckpt-step-" in out
