"""Shard-map properties and ShardedService routing/failover/fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro import testing
from repro.serve import (
    LEVEL_LIVE,
    LEVEL_POPULARITY,
    LEVEL_STALE,
    RecommendationService,
    ShardMap,
    ShardedService,
    jump_hash,
)

from .test_breaker import FakeClock
from .test_service import NUM_ITEMS, POPULARITY, FakeModel, make_service

USERS_10K = range(10_000)


class WideModel(FakeModel):
    """FakeModel with a user space big enough to exercise routing."""

    num_users = 100_000


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    testing.reset()


def make_pool(num_workers=4, clock=None, fail_times=0, **kwargs):
    clock = clock or FakeClock()
    workers = [
        make_service(WideModel(fail_times=fail_times), clock=clock)
        for _ in range(num_workers)
    ]
    defaults = dict(popularity=POPULARITY, clock=clock, down_cooldown=1.0)
    defaults.update(kwargs)
    return ShardedService(workers, **defaults), workers, clock


class TestJumpHash:
    def test_deterministic_and_in_range(self):
        for buckets in (1, 2, 7, 64):
            for key in (0, 1, 12345, 2**63):
                bucket = jump_hash(key, buckets)
                assert 0 <= bucket < buckets
                assert bucket == jump_hash(key, buckets)

    def test_rejects_empty_bucket_space(self):
        with pytest.raises(ValueError):
            jump_hash(1, 0)


class TestShardMapProperties:
    def test_stable_across_instances(self):
        """The same (user, seed, N) must hash identically everywhere —
        two processes build the same routing without coordination."""
        one, two = ShardMap(8, seed=3), ShardMap(8, seed=3)
        users = list(range(0, 5000, 7))
        assert [one.shard_of(u) for u in users] == [
            two.shard_of(u) for u in users
        ]

    def test_balanced_chi_square_over_10k_users(self):
        """Occupancy over 10k sequential user ids must pass a
        chi-square uniformity bound (p ≈ 0.001 for the shard dof)."""
        # dof=N-1 critical values at p=0.001.
        critical = {2: 13.82, 4: 16.27, 8: 24.32}
        for shards, bound in critical.items():
            counts = np.bincount(
                ShardMap(shards).assignments(USERS_10K), minlength=shards
            )
            expected = len(USERS_10K) / shards
            chi2 = float(((counts - expected) ** 2 / expected).sum())
            assert chi2 < bound, f"{shards} shards unbalanced: {counts}"

    def test_resharding_moves_about_one_over_n_plus_one(self):
        """Growing N → N+1 must remap only ~1/(N+1) of users — the
        consistent-hashing property that makes live resharding cheap."""
        for shards in (2, 4, 8):
            before = ShardMap(shards).assignments(USERS_10K)
            after = ShardMap(shards + 1).assignments(USERS_10K)
            moved = before != after
            fraction = moved.mean()
            ideal = 1.0 / (shards + 1)
            assert 0.5 * ideal < fraction < 1.5 * ideal
            # Every moved user lands on the *new* shard; nobody shuffles
            # between surviving shards.
            assert set(after[moved]) == {shards}

    def test_route_puts_primary_first_and_covers_replicas(self):
        shard_map = ShardMap(4)
        for user in range(50):
            order = shard_map.route(user)
            assert order[0] == shard_map.shard_of(user)
            assert sorted(order) == [0, 1, 2, 3]
        assert len(shard_map.route(7, max_failover=1)) == 2
        assert len(shard_map.route(7, max_failover=99)) == 4

    def test_validates_construction(self):
        with pytest.raises(ValueError):
            ShardMap(0)


class TestShardedRouting:
    def test_primary_shard_answers(self):
        pool, workers, _ = make_pool()
        user = 5
        response = pool.recommend(user, top_n=3)
        assert response.level == LEVEL_LIVE
        assert response.worker == pool.shard_map.shard_of(user)
        assert response.rerouted == 0
        assert response.items.size == 3

    def test_requests_spread_over_all_workers(self):
        pool, workers, _ = make_pool()
        for user in range(200):
            pool.recommend(user, top_n=2)
        served = [
            worker.counters.get("serve.responses.live") for worker in workers
        ]
        assert all(count > 0 for count in served)
        assert sum(served) == 200

    def test_numpy_array_exclude_is_accepted(self):
        """Regression: the front door must not truth-test the exclude
        container (ambiguous for numpy arrays from items_of_user)."""
        pool, _, _ = make_pool()
        response = pool.recommend(5, top_n=3, exclude=np.asarray([9, 8]))
        assert response.level == LEVEL_LIVE
        assert not set(int(i) for i in response.items) & {9, 8}

    def test_malformed_requests_raise(self):
        pool, _, _ = make_pool()
        with pytest.raises(ValueError):
            pool.recommend(-1)
        with pytest.raises(ValueError):
            pool.recommend(1, top_n=0)
        with pytest.raises(ValueError):
            pool.recommend(10**6)  # out of the model's user range


class TestFailover:
    def test_crashed_worker_reroutes_to_replica(self):
        pool, workers, _ = make_pool()
        user = next(u for u in range(100) if pool.shard_map.shard_of(u) == 0)
        with testing.CrashPoint(testing.worker_site(0), at=1, every=1):
            response = pool.recommend(user, top_n=3)
        assert response.level == LEVEL_LIVE
        assert response.worker != 0
        assert response.rerouted == 1

    def test_downed_worker_is_skipped_until_cooldown(self):
        pool, workers, clock = make_pool(down_cooldown=5.0)
        user = next(u for u in range(100) if pool.shard_map.shard_of(u) == 0)
        with testing.CrashPoint(testing.worker_site(0), at=1, every=1):
            pool.recommend(user, top_n=3)
        # Site disarmed, but the shard is cooling down: replica answers
        # without a dispatch attempt at worker 0.
        hits_before = workers[0].counters.get("serve.requests")
        response = pool.recommend(user, top_n=3)
        assert response.worker != 0
        assert workers[0].counters.get("serve.requests") == hits_before
        clock.advance(10.0)
        response = pool.recommend(user, top_n=3)
        assert response.worker == 0

    def test_all_workers_down_serves_front_door_stale_then_popularity(self):
        pool, workers, clock = make_pool()
        hot_user, cold_user = 3, 4
        live = pool.recommend(hot_user, top_n=3)
        assert live.level == LEVEL_LIVE
        with testing.CrashPoint(testing.SERVE_WORKER, at=1, every=1):
            stale = pool.recommend(hot_user, top_n=3)
            popular = pool.recommend(cold_user, top_n=3)
        assert stale.level == LEVEL_STALE
        assert stale.worker is None
        np.testing.assert_array_equal(stale.items, live.items)
        assert popular.level == LEVEL_POPULARITY
        np.testing.assert_array_equal(
            popular.items, [NUM_ITEMS - 1, NUM_ITEMS - 2, NUM_ITEMS - 3]
        )

    def test_never_errors_even_with_no_popularity_table(self):
        pool, _, _ = make_pool(popularity=None)
        with testing.CrashPoint(testing.SERVE_WORKER, at=1, every=1):
            response = pool.recommend(42, top_n=3)
        assert response.level == LEVEL_POPULARITY
        assert response.items.size == 0  # empty but answered, never raised


class TestPoolLifecycle:
    def test_health_aggregates_workers(self):
        pool, workers, _ = make_pool()
        health = pool.health()
        assert health["status"] == "ok"
        assert len(health["workers"]) == 4
        assert health["shards"] == 4

    def test_health_degraded_while_a_worker_is_down(self):
        pool, _, _ = make_pool()
        user = next(u for u in range(100) if pool.shard_map.shard_of(u) == 0)
        with testing.CrashPoint(testing.worker_site(0), at=1, every=1):
            pool.recommend(user)
        assert pool.health()["status"] == "degraded"

    def test_poll_reload_fans_out(self):
        pool, workers, _ = make_pool()
        outcomes = pool.poll_reload()
        assert outcomes == ["unchanged"] * len(workers)

    def test_slow_worker_site_injects_latency(self):
        pool, _, _ = make_pool()
        user = next(u for u in range(100) if pool.shard_map.shard_of(u) == 1)
        slept = []
        with testing.Latency(
            testing.worker_site(1), seconds=0.5, sleep=slept.append
        ) as fault:
            pool.recommend(user)
        assert fault.hits == 1
        assert slept == [0.5]

    def test_worker_count_must_match_shard_map(self):
        clock = FakeClock()
        workers = [make_service(WideModel(), clock=clock) for _ in range(2)]
        with pytest.raises(ValueError):
            ShardedService(workers, shard_map=ShardMap(3))
        with pytest.raises(ValueError):
            ShardedService([])
