"""Load-generator determinism, Zipf shape, segmentation, SLO logic."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.serve import (
    SLO,
    FaultWindow,
    ShardedService,
    ZipfTraffic,
    run_load,
    write_bench,
)
from repro.serve.loadgen import _segment

from .test_breaker import FakeClock
from .test_service import POPULARITY, FakeModel, make_service


def make_fake_pool(num_workers=2, clock=None):
    clock = clock or FakeClock()
    workers = [
        make_service(FakeModel(), clock=clock) for _ in range(num_workers)
    ]
    return ShardedService(workers, popularity=POPULARITY, clock=clock)


class TestTraceDeterminism:
    def test_same_seed_same_trace(self):
        one = ZipfTraffic(500, 200, rps=100.0, skew=1.2, seed=9)
        two = ZipfTraffic(500, 200, rps=100.0, skew=1.2, seed=9)
        assert one.digest() == two.digest()
        assert [(r.at, r.user) for r in one.trace()] == [
            (r.at, r.user) for r in two.trace()
        ]

    def test_different_seed_different_trace(self):
        one = ZipfTraffic(500, 200, seed=1)
        two = ZipfTraffic(500, 200, seed=2)
        assert one.digest() != two.digest()

    def test_duration_sizes_the_trace(self):
        traffic = ZipfTraffic(100, rps=50.0, duration=2.0, seed=0)
        assert traffic.requests == 100
        with pytest.raises(ValueError):
            ZipfTraffic(100, 10, duration=1.0)
        with pytest.raises(ValueError):
            ZipfTraffic(100)

    def test_zipf_skew_concentrates_traffic(self):
        """With a heavy tail, the hottest user must dwarf the median."""
        traffic = ZipfTraffic(1000, 5000, skew=1.2, seed=3)
        users = [r.user for r in traffic.trace()]
        counts = np.bincount(users, minlength=1000)
        assert counts.max() > 50  # the head user alone
        assert np.median(counts) <= 2  # most users barely appear

    def test_arrivals_are_monotone_at_the_requested_rate(self):
        traffic = ZipfTraffic(100, 1000, rps=200.0, seed=0)
        arrivals = np.asarray([r.at for r in traffic.trace()])
        assert (np.diff(arrivals) >= 0).all()
        assert arrivals[-1] == pytest.approx(1000 / 200.0, rel=0.25)


class TestSegmentation:
    def test_gaps_run_fault_free(self):
        crash = FaultWindow(10, 20, "score-crash")
        slow = FaultWindow(30, 40, "score-slow", seconds=0.1)
        segments = _segment(50, [slow, crash])
        assert [(lo, hi, w.kind if w else None) for lo, hi, w in segments] == [
            (0, 10, None), (10, 20, "score-crash"), (20, 30, None),
            (30, 40, "score-slow"), (40, 50, None),
        ]

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ValueError):
            _segment(50, [FaultWindow(0, 20, "score-crash"),
                          FaultWindow(10, 30, "score-slow")])

    def test_window_validation(self):
        with pytest.raises(ValueError):
            FaultWindow(5, 5, "score-crash")
        with pytest.raises(ValueError):
            FaultWindow(0, 1, "unknown-kind")


class TestRunDeterminism:
    def _run_once(self, tmp_path, name):
        """Pool + harness on fake clocks: latencies are all zero, so
        the whole summary — and the BENCH file bytes — must be a pure
        function of the seed."""
        clock = FakeClock()
        pool = make_fake_pool(num_workers=2, clock=clock)
        traffic = ZipfTraffic(FakeModel.num_users, 120, rps=50.0, seed=4)
        metrics = MetricsRegistry()
        report = run_load(
            pool, traffic, concurrency=4, pace=False, top_n=3,
            metrics=metrics, clock=clock, sleep=lambda _s: None,
        )
        path = tmp_path / name
        write_bench(str(path), [{"label": "workers-2", **report.summary()}],
                    meta={"seed": 4})
        return report, path.read_bytes()

    def test_same_seed_identical_summary_and_bench_file(self, tmp_path):
        first, bytes_one = self._run_once(tmp_path, "one.json")
        second, bytes_two = self._run_once(tmp_path, "two.json")
        assert first.summary() == second.summary()
        assert bytes_one == bytes_two
        payload = json.loads(bytes_one)
        point = payload["operating_points"][0]
        assert point["requests"] == 120
        assert point["errors"] == 0
        assert point["responses_by_level"]["live"] == 120
        assert point["trace_sha256"] == ZipfTraffic(
            FakeModel.num_users, 120, rps=50.0, seed=4
        ).digest()

    def test_bench_payload_shape(self, tmp_path):
        _, raw = self._run_once(tmp_path, "shape.json")
        payload = json.loads(raw)
        assert payload["bench"] == "serve"
        point = payload["operating_points"][0]
        for key in ("latency_p50_seconds", "latency_p99_seconds",
                    "throughput_rps", "responses_by_worker", "workers"):
            assert key in point


class TestSLO:
    def _report_with(self, levels, latency=0.01, errors=0):
        from repro.serve.loadgen import LoadReport

        records = []
        for index, level in enumerate(levels):
            records.append({
                "index": index, "user": index, "error": False,
                "latency": latency, "level": level, "items": 3,
                "worker": 0, "rerouted": 0,
            })
        for index in range(errors):
            records.append({
                "index": len(levels) + index, "user": 0, "error": True,
                "exception": "RuntimeError: boom", "latency": latency,
            })
        return LoadReport(records=records, wall_seconds=1.0,
                          trace_digest="x", workers=1)

    def test_clean_run_passes(self):
        report = self._report_with(["live"] * 10)
        assert report.violations(SLO(p99_seconds=1.0)) == []
        report.assert_slo(SLO(p99_seconds=1.0))

    def test_errors_violate_the_zero_error_contract(self):
        report = self._report_with(["live"] * 10, errors=1)
        found = report.violations(SLO(p99_seconds=1.0))
        assert any("errors" in v for v in found)
        with pytest.raises(AssertionError):
            report.assert_slo(SLO(p99_seconds=1.0))

    def test_p99_breach_detected(self):
        report = self._report_with(["live"] * 10, latency=2.0)
        found = report.violations(SLO(p99_seconds=0.5))
        assert any("p99" in v for v in found)

    def test_rung_budget_enforced(self):
        report = self._report_with(["popularity"] * 6 + ["live"] * 4)
        found = report.violations(
            SLO(p99_seconds=1.0, min_live_fraction=0.5,
                max_popularity_fraction=0.25)
        )
        assert any("live fraction" in v for v in found)
        assert any("popularity fraction" in v for v in found)
