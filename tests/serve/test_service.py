"""RecommendationService tests: deadlines, retry, ladder, probes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import (
    LEVEL_LIVE,
    LEVEL_POPULARITY,
    LEVEL_STALE,
    CircuitBreaker,
    RecommendationService,
    RetryPolicy,
    StaticModelProvider,
)

from .test_breaker import FakeClock

NUM_USERS, NUM_ITEMS = 4, 10
POPULARITY = np.arange(NUM_ITEMS)  # item 9 most popular


class FakeModel:
    """Scriptable model: fail N times, add latency, then answer."""

    num_users = NUM_USERS
    num_items = NUM_ITEMS

    def __init__(self, clock=None, fail_times: int = 0, latency: float = 0.0):
        self.clock = clock
        self.fail_times = fail_times
        self.latency = latency
        self.calls = 0

    def recommend(self, user, top_n=20, exclude=None):
        self.calls += 1
        if self.clock is not None and self.latency:
            self.clock.advance(self.latency)
        if self.calls <= self.fail_times:
            raise RuntimeError("scoring backend down")
        exclude = exclude or set()
        ranked = [i for i in range(NUM_ITEMS - 1, -1, -1) if i not in exclude]
        return np.asarray(ranked[:top_n], dtype=np.int64)


def make_service(model, clock=None, **kwargs):
    clock = clock or FakeClock()
    defaults = dict(
        popularity=POPULARITY,
        default_top_n=3,
        retry=RetryPolicy(max_attempts=3, base_delay=0.01),
        breaker=CircuitBreaker(
            failure_threshold=2, recovery_time=5.0, clock=clock
        ),
        clock=clock,
        sleep=lambda seconds: clock.advance(seconds),
    )
    defaults.update(kwargs)
    return RecommendationService(model, **defaults)


class TestLiveRung:
    def test_happy_path(self):
        service = make_service(FakeModel())
        response = service.recommend(1, exclude={9})
        assert response.level == LEVEL_LIVE
        assert not response.degraded
        assert response.retries == 0
        np.testing.assert_array_equal(response.items, [8, 7, 6])
        assert service.counters.get("serve.responses.live") == 1

    def test_retry_recovers_transient_failure(self):
        model = FakeModel(fail_times=2)
        service = make_service(model)
        response = service.recommend(0)
        assert response.level == LEVEL_LIVE
        assert response.retries == 2
        assert model.calls == 3
        assert service.counters.get("serve.retries") == 2
        assert service.counters.get("serve.score.errors") == 2

    def test_retries_are_bounded(self):
        model = FakeModel(fail_times=99)
        service = make_service(model)
        response = service.recommend(0)
        assert response.degraded
        assert model.calls == 3  # max_attempts, then degrade

    def test_bare_model_is_wrapped(self):
        service = make_service(FakeModel())
        assert isinstance(service.provider, StaticModelProvider)


class TestDeadlines:
    def test_zero_deadline_skips_live_scoring(self):
        model = FakeModel()
        service = make_service(model)
        response = service.recommend(0, deadline=0.0)
        assert model.calls == 0
        assert response.level == LEVEL_POPULARITY
        assert response.deadline_hit
        assert service.counters.get("serve.deadline_exceeded") == 1

    def test_slow_scoring_misses_deadline(self):
        clock = FakeClock()
        model = FakeModel(clock=clock, latency=0.2)
        service = make_service(model, clock=clock)
        response = service.recommend(0, deadline=0.05)
        assert model.calls == 1
        assert response.degraded
        assert response.deadline_hit
        assert service.counters.get("serve.deadline_exceeded") == 1

    def test_no_retry_when_budget_cannot_cover_backoff(self):
        clock = FakeClock()
        # Remaining budget after the attempt (0.005) can never cover the
        # jittered backoff (>= 0.5 * base_delay = 0.005), so no retry.
        model = FakeModel(clock=clock, fail_times=99, latency=0.045)
        service = make_service(model, clock=clock)
        response = service.recommend(0, deadline=0.05)
        assert model.calls == 1  # backoff would overrun the deadline
        assert response.degraded

    def test_default_deadline_applies(self):
        clock = FakeClock()
        model = FakeModel(clock=clock, latency=0.2)
        service = make_service(model, clock=clock, default_deadline=0.1)
        assert service.recommend(0).deadline_hit


class TestDegradationLadder:
    def test_stale_serves_last_good_response(self):
        model = FakeModel()
        service = make_service(model)
        live = service.recommend(2)
        model.fail_times = 99
        model.calls = 0
        stale = service.recommend(2)
        assert stale.level == LEVEL_STALE
        np.testing.assert_array_equal(stale.items, live.items)
        assert service.counters.get("serve.cache.hits") == 1
        assert service.counters.get("serve.degraded") == 1

    def test_stale_respects_exclude(self):
        model = FakeModel()
        service = make_service(model)
        service.recommend(2)  # caches [9, 8, 7]
        model.fail_times = 99
        stale = service.recommend(2, exclude={9})
        assert stale.level == LEVEL_STALE
        assert 9 not in stale.items

    def test_stale_expires_to_popularity(self):
        clock = FakeClock()
        model = FakeModel()
        service = make_service(model, clock=clock, stale_ttl=10.0)
        service.recommend(2)
        model.fail_times = 99
        clock.advance(11.0)
        response = service.recommend(2)
        assert response.level == LEVEL_POPULARITY

    def test_popularity_is_last_resort_and_excludes(self):
        model = FakeModel(fail_times=99)
        service = make_service(model)
        response = service.recommend(1, exclude={9, 8})
        assert response.level == LEVEL_POPULARITY
        np.testing.assert_array_equal(response.items, [7, 6, 5])

    def test_every_request_is_answered_under_total_failure(self):
        model = FakeModel(fail_times=10**9)
        service = make_service(model)
        for user in range(NUM_USERS):
            response = service.recommend(user)
            assert response.items.size > 0
            assert response.degraded


class TestBreakerIntegration:
    def test_opens_and_short_circuits(self):
        model = FakeModel(fail_times=10**9)
        service = make_service(model)
        service.recommend(0)
        service.recommend(0)  # second consecutive failure trips it
        calls = model.calls
        response = service.recommend(0)
        assert model.calls == calls  # live path skipped
        assert response.breaker_state == "open"
        assert service.counters.get("serve.breaker.short_circuit") == 1
        assert service.counters.get("serve.breaker.open") == 1

    def test_recovers_half_open_to_closed(self):
        clock = FakeClock()
        model = FakeModel(fail_times=6)
        service = make_service(model, clock=clock)
        service.recommend(0)
        service.recommend(0)
        assert service.breaker.state == "open"
        clock.advance(6.0)
        model.fail_times = 0  # backend healed
        response = service.recommend(0)
        assert response.level == LEVEL_LIVE
        assert response.breaker_state == "closed"
        assert service.counters.get("serve.breaker.half_open") == 1
        assert service.counters.get("serve.breaker.closed") == 1


class TestRetryJitter:
    def test_same_seed_draws_the_same_backoff_schedule(self):
        first = RetryPolicy(max_attempts=5, base_delay=0.01, seed=42)
        second = RetryPolicy(max_attempts=5, base_delay=0.01, seed=42)
        schedule = [first.backoff(attempt) for attempt in (1, 2, 3, 4)]
        assert schedule == [second.backoff(attempt) for attempt in (1, 2, 3, 4)]

    def test_different_seeds_diverge(self):
        a = RetryPolicy(base_delay=0.01, seed=1)
        b = RetryPolicy(base_delay=0.01, seed=2)
        assert [a.backoff(n) for n in (1, 2, 3)] != [
            b.backoff(n) for n in (1, 2, 3)
        ]

    def test_jitter_stays_within_the_half_to_full_band(self):
        policy = RetryPolicy(
            base_delay=0.01, multiplier=2.0, max_delay=1.0, seed=7
        )
        for attempt in range(1, 6):
            cap = min(0.01 * 2.0 ** (attempt - 1), 1.0)
            for _ in range(50):
                delay = policy.backoff(attempt)
                assert 0.5 * cap <= delay <= cap

    def test_injected_rng_overrides_the_policy_stream(self):
        policy = RetryPolicy(base_delay=0.01, seed=0)
        rng = np.random.default_rng(123)
        expected_draw = np.random.default_rng(123).random()
        delay = policy.backoff(1, rng)
        assert delay == pytest.approx(0.01 * (0.5 + 0.5 * expected_draw))

    def test_service_backoff_is_reproducible_across_instances(self):
        # Two identically-seeded services retrying the same flaky model
        # sleep for identical jittered durations — chaos traces replay.
        sleeps = [[], []]
        for index in range(2):
            model = FakeModel(fail_times=2)
            service = make_service(
                model, sleep=sleeps[index].append, jitter_seed=9
            )
            assert service.recommend(0).retries == 2
        assert sleeps[0] == sleeps[1]
        assert len(sleeps[0]) == 2


class TestValidationAndProbes:
    def test_rejects_bad_requests(self):
        service = make_service(FakeModel())
        with pytest.raises(ValueError):
            service.recommend(0, top_n=0)
        with pytest.raises(ValueError):
            service.recommend(-1)
        with pytest.raises(ValueError):
            service.recommend(NUM_USERS)  # out of the model's range

    def test_health_ok(self):
        service = make_service(FakeModel())
        service.recommend(0)
        health = service.health()
        assert health["status"] == "ok"
        assert health["ready"]
        assert health["breaker"] == "closed"
        assert health["stale_entries"] == 1
        assert health["counters"]["serve.requests"] == 1

    def test_health_degraded_when_breaker_open(self):
        service = make_service(FakeModel(fail_times=10**9))
        service.recommend(0)
        service.recommend(0)
        assert service.health()["status"] == "degraded"

    def test_health_unready_without_model(self):
        service = make_service(StaticModelProvider(None))
        assert not service.ready()
        assert service.health()["status"] == "unready"
        # Still answers (popularity rung) instead of raising.
        response = service.recommend(0)
        assert response.level == LEVEL_POPULARITY
        assert response.items.size > 0
        assert service.counters.get("serve.unready") == 1


class TestReloadHook:
    def test_reload_every_polls_provider(self):
        class CountingProvider(StaticModelProvider):
            polls = 0

            def poll(self):
                self.polls += 1
                return "unchanged"

        provider = CountingProvider(FakeModel())
        service = make_service(provider, reload_every=3)
        for _ in range(7):
            service.recommend(0)
        assert provider.polls == 2
        assert service.counters.get("serve.reload.unchanged") == 2

    def test_poll_reload_survives_provider_errors(self):
        class BrokenProvider(StaticModelProvider):
            def poll(self):
                raise RuntimeError("manifest exploded")

        service = make_service(BrokenProvider(FakeModel()))
        assert service.poll_reload() == "error"
        assert service.counters.get("serve.reload.error") == 1
