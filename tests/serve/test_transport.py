"""Framing-layer tests: roundtrips, corruption, timeouts, hangups.

The worker transport's contract is that *nothing questionable gets
through*: any torn, garbled, oversized, or undecodable frame raises
``TransportError`` (poisoning the connection) rather than delivering
garbage, and a dead or silent peer surfaces as
``TransportClosed``/``TransportTimeout`` instead of a stall.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import testing
from repro.serve.transport import (
    HEADER,
    MAX_FRAME_BYTES,
    TransportClosed,
    TransportError,
    TransportTimeout,
    recv_frame,
    send_frame,
    worker_channel,
)


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    testing.reset()


@pytest.fixture()
def channel():
    a, b = worker_channel()
    yield a, b
    a.close()
    b.close()


class TestRoundtrip:
    def test_message_survives_the_wire_bit_for_bit(self, channel):
        a, b = channel
        message = {
            "op": "recommend",
            "items": np.arange(10, dtype=np.int64),
            "nested": {"level": "live", "seq": 42},
        }
        send_frame(a, message)
        received = recv_frame(b, timeout=1.0)
        assert received["op"] == "recommend"
        assert received["nested"] == {"level": "live", "seq": 42}
        np.testing.assert_array_equal(received["items"], message["items"])
        assert received["items"].dtype == np.int64

    def test_frames_arrive_in_order(self, channel):
        a, b = channel
        for seq in range(20):
            send_frame(a, {"seq": seq})
        assert [recv_frame(b, 1.0)["seq"] for _ in range(20)] == list(range(20))

    def test_both_directions_work(self, channel):
        a, b = channel
        send_frame(a, {"ping": 1})
        assert recv_frame(b, 1.0) == {"ping": 1}
        send_frame(b, {"pong": 1})
        assert recv_frame(a, 1.0) == {"pong": 1}


class TestCorruption:
    def test_garbled_frame_fails_the_checksum(self, channel):
        a, b = channel
        with testing.FaultyWrites(
            testing.PROC_FRAME, mode="garble", at=1, fraction=0.5
        ) as fault:
            send_frame(a, {"op": "recommend", "items": list(range(50))})
        assert fault.corrupted
        with pytest.raises(TransportError, match="checksum"):
            recv_frame(b, timeout=1.0)

    def test_explicit_corrupt_flag_fails_the_checksum(self, channel):
        a, b = channel
        send_frame(a, {"op": "recommend", "items": list(range(50))}, corrupt=True)
        with pytest.raises(TransportError, match="checksum"):
            recv_frame(b, timeout=1.0)

    def test_clean_frames_pass_while_a_fault_targets_a_later_write(
        self, channel
    ):
        a, b = channel
        with testing.FaultyWrites(testing.PROC_FRAME, mode="garble", at=2):
            send_frame(a, {"seq": 1})
            assert recv_frame(b, 1.0) == {"seq": 1}
            send_frame(a, {"seq": 2})
            with pytest.raises(TransportError):
                recv_frame(b, 1.0)

    def test_truncated_frame_fails_the_checksum(self, channel):
        # The length prefix always matches the bytes actually written
        # (stream stays aligned), so truncation surfaces as a CRC
        # mismatch over the short payload — not a stall.
        a, b = channel
        with testing.FaultyWrites(
            testing.PROC_FRAME, mode="truncate", at=1, fraction=0.5
        ):
            send_frame(a, {"op": "recommend", "items": list(range(50))})
        with pytest.raises(TransportError, match="checksum"):
            recv_frame(b, timeout=1.0)

    def test_oversized_length_prefix_is_refused_not_allocated(self, channel):
        a, b = channel
        a.sendall(HEADER.pack(MAX_FRAME_BYTES + 1, 0))
        with pytest.raises(TransportError, match="cap"):
            recv_frame(b, timeout=1.0)

    def test_undecodable_payload_is_a_transport_error(self, channel):
        a, b = channel
        import zlib

        payload = b"\x80\x05not really a pickle"
        a.sendall(HEADER.pack(len(payload), zlib.crc32(payload)) + payload)
        with pytest.raises(TransportError, match="undecodable"):
            recv_frame(b, timeout=1.0)


class TestLiveness:
    def test_timeout_when_no_frame_arrives(self, channel):
        _, b = channel
        with pytest.raises(TransportTimeout):
            recv_frame(b, timeout=0.05)

    def test_peer_hangup_is_closed_not_a_stall(self, channel):
        a, b = channel
        a.close()
        with pytest.raises(TransportClosed):
            recv_frame(b, timeout=1.0)

    def test_send_to_closed_peer_eventually_fails(self, channel):
        a, b = channel
        b.close()
        with pytest.raises(TransportClosed):
            # The first send may land in the kernel buffer; keep pushing
            # until the broken pipe surfaces.
            for _ in range(64):
                send_frame(a, {"bulk": "x" * 65536})

    def test_concurrent_senders_interleave_whole_frames(self, channel):
        a, b = channel
        lock = threading.Lock()

        def sender(tag):
            for seq in range(25):
                with lock:  # the transport requires caller-side framing locks
                    send_frame(a, {"tag": tag, "seq": seq})

        threads = [
            threading.Thread(target=sender, args=(t,)) for t in ("x", "y")
        ]
        for thread in threads:
            thread.start()
        received = [recv_frame(b, 1.0) for _ in range(50)]
        for thread in threads:
            thread.join()
        by_tag = {"x": [], "y": []}
        for message in received:
            by_tag[message["tag"]].append(message["seq"])
        assert by_tag["x"] == list(range(25))
        assert by_tag["y"] == list(range(25))
