"""Chaos tests: the service keeps answering under injected failure.

The acceptance contract for :mod:`repro.serve`: with crashes, write
corruption, and latency armed on the ``serve:score`` / ``serve:reload``
fault sites, every request still returns a valid top-N (degradation
level recorded, zero unhandled exceptions), the breaker opens and
recovers half-open → closed, and a corrupt candidate checkpoint never
replaces the live model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs, testing
from repro.ckpt import CheckpointManager
from repro.models import BPRMF
from repro.serve import (
    LEVEL_LIVE,
    LEVELS,
    CheckpointModelProvider,
    CircuitBreaker,
    RecommendationService,
    RetryPolicy,
)

from .test_breaker import FakeClock

NUM_USERS, NUM_ITEMS, DIM = 8, 12, 4


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    testing.reset()


def make_model(seed: int = 0) -> BPRMF:
    return BPRMF(NUM_USERS, NUM_ITEMS, DIM, rng=np.random.default_rng(seed))


def make_service(model_or_provider, clock=None, **kwargs):
    clock = clock or FakeClock()
    defaults = dict(
        popularity=np.arange(NUM_ITEMS),
        default_top_n=4,
        retry=RetryPolicy(max_attempts=2, base_delay=0.001),
        breaker=CircuitBreaker(
            failure_threshold=3, recovery_time=1.0, clock=clock
        ),
        clock=clock,
        sleep=lambda seconds: clock.advance(seconds),
    )
    defaults.update(kwargs)
    return RecommendationService(model_or_provider, **defaults), clock


def assert_valid_response(response, exclude=frozenset()):
    """A chaos-proof answer: non-empty, in-range, deduplicated, level
    recorded, excluded items absent."""
    assert response.level in LEVELS
    items = response.items
    assert items.size > 0
    assert items.size == np.unique(items).size
    assert items.min() >= 0 and items.max() < NUM_ITEMS
    assert not set(items.tolist()) & set(exclude)


class TestScoreCrashChaos:
    def test_every_request_answered_and_breaker_recovers(self):
        service, clock = make_service(make_model())
        exclude = {0, 1}

        # Warm the stale cache while healthy.
        for user in range(NUM_USERS):
            assert_valid_response(service.recommend(user, exclude=exclude), exclude)

        # Total scoring outage: every hit on serve:score crashes.
        with testing.CrashPoint(testing.SERVE_SCORE, at=1, every=1) as fault:
            for user in range(NUM_USERS):
                response = service.recommend(user, exclude=exclude)
                assert_valid_response(response, exclude)
                assert response.degraded  # never pretends to be live
            assert fault.triggered
        assert service.counters.get("serve.breaker.open") >= 1
        assert service.breaker.state == "open"

        # Outage over: breaker walks open -> half-open -> closed.
        clock.advance(1.5)
        response = service.recommend(0, exclude=exclude)
        assert response.level == LEVEL_LIVE
        assert response.breaker_state == "closed"
        assert service.counters.get("serve.breaker.half_open") >= 1
        assert service.counters.get("serve.breaker.closed") >= 1
        assert service.counters.get("serve.degraded") == NUM_USERS

    def test_stale_cache_personalises_degraded_answers(self):
        service, _ = make_service(make_model())
        live = service.recommend(3)
        with testing.CrashPoint(testing.SERVE_SCORE, at=1, every=1):
            stale = service.recommend(3)
        assert stale.level == "stale"
        np.testing.assert_array_equal(stale.items, live.items)

    def test_intermittent_failures_ride_on_retry(self):
        # Crash hits 1, 3, 5, ... — every first attempt fails, every
        # retry succeeds, so responses stay live throughout.
        service, _ = make_service(make_model())
        with testing.CrashPoint(testing.SERVE_SCORE, at=1, every=2):
            for user in range(4):
                response = service.recommend(user)
                assert response.level == LEVEL_LIVE
                assert response.retries == 1
        assert service.counters.get("serve.breaker.open", ) == 0


class TestLatencyChaos:
    def test_injected_latency_fires_deadlines(self):
        clock = FakeClock()
        service, _ = make_service(
            make_model(), clock=clock, default_deadline=0.05
        )
        # The armed latency advances the service's own clock, so the
        # deadline genuinely expires mid-request.
        with testing.Latency(
            testing.SERVE_SCORE, seconds=0.2,
            sleep=lambda seconds: clock.advance(seconds),
        ) as fault:
            for user in range(NUM_USERS):
                response = service.recommend(user)
                assert_valid_response(response)
                assert response.degraded
                # Until the breaker opens, every slow attempt burns its
                # deadline; afterwards requests short-circuit untouched.
                if response.breaker_state == "closed":
                    assert response.deadline_hit
            assert fault.hits > 0
        assert service.counters.get("serve.deadline_exceeded") >= 3
        assert service.counters.get("serve.breaker.open") >= 1  # slow is broken

    def test_fast_requests_unaffected_by_armed_deadline(self):
        service, _ = make_service(make_model(), default_deadline=0.05)
        response = service.recommend(0)
        assert response.level == LEVEL_LIVE
        assert not response.deadline_hit


class TestReloadChaos:
    def _provider_with_live_model(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        good = make_model(seed=1)
        manager.save(
            {"fingerprint": "fp", "step": 1, "model": good.state_dict()},
            step=1,
        )
        provider = CheckpointModelProvider(
            str(tmp_path),
            builder=make_model,
        )
        assert provider.poll() == "reloaded"
        return manager, provider, good

    def test_corrupt_candidate_never_replaces_live_model(self, tmp_path):
        manager, provider, good = self._provider_with_live_model(tmp_path)
        service, _ = make_service(provider)
        with testing.FaultyWrites(
            testing.CKPT_PAYLOAD_WRITE, mode="truncate", fraction=0.3
        ):
            manager.save(
                {"fingerprint": "fp", "step": 2,
                 "model": make_model(2).state_dict()},
                step=2,
            )
        with pytest.warns(RuntimeWarning):
            assert service.poll_reload() == "rejected"
        assert service.counters.get("serve.reload.rejected") == 1
        # Serving continues on the pre-corruption model.
        response = service.recommend(0)
        assert response.level == LEVEL_LIVE
        assert response.model_version == "ckpt-step-1"
        np.testing.assert_allclose(
            service.provider.model().all_scores(np.array([0])),
            good.all_scores(np.array([0])),
        )

    def test_crash_during_reload_keeps_serving(self, tmp_path):
        manager, provider, _ = self._provider_with_live_model(tmp_path)
        service, _ = make_service(provider, reload_every=2)
        manager.save(
            {"fingerprint": "fp", "step": 2,
             "model": make_model(2).state_dict()},
            step=2,
        )
        with testing.CrashPoint(testing.SERVE_RELOAD, at=1, every=1):
            with pytest.warns(RuntimeWarning):
                for user in range(4):
                    assert_valid_response(service.recommend(user))
        assert service.counters.get("serve.reload.rejected") == 2
        assert service.provider.version() == "ckpt-step-1"
        # Disarmed: the very next piggybacked poll promotes the update.
        service.recommend(0)
        service.recommend(0)
        assert service.provider.version() == "ckpt-step-2"
        assert service.counters.get("serve.reload.reloaded") == 1


class TestCombinedChaos:
    def test_full_matrix_never_raises(self, tmp_path):
        """Crash + latency + reload corruption armed together."""
        manager, provider, _ = (
            TestReloadChaos()._provider_with_live_model(tmp_path)
        )
        clock = FakeClock()
        service, _ = make_service(
            provider, clock=clock, default_deadline=0.05, reload_every=3
        )
        with testing.FaultyWrites(
            testing.CKPT_PAYLOAD_WRITE, mode="garble", fraction=0.5
        ):
            manager.save(
                {"fingerprint": "fp", "step": 2,
                 "model": make_model(3).state_dict()},
                step=2,
            )
        answered = 0
        with testing.CrashPoint(testing.SERVE_SCORE, at=2, every=3):
            with testing.Latency(
                testing.SERVE_SCORE, seconds=0.2, at=5,
                sleep=lambda seconds: clock.advance(seconds),
            ):
                with pytest.warns(RuntimeWarning):
                    for index in range(12):
                        user = index % NUM_USERS
                        response = service.recommend(user, exclude={2})
                        assert_valid_response(response, exclude={2})
                        answered += 1
        assert answered == 12
        assert service.provider.version() == "ckpt-step-1"
        counters = service.counters
        assert counters.get("serve.reload.rejected") >= 1
        assert counters.get("serve.degraded") >= 1
        assert counters.get("serve.requests") == 12


class TestChaosObservability:
    """Chaos runs must leave an observable record: per-request spans
    tagged with the degradation rung and breaker state, and metrics
    counting every request and transition."""

    @pytest.fixture()
    def isolated_metrics(self):
        registry = obs.MetricsRegistry()
        previous = obs.set_metrics(registry)
        yield registry
        obs.set_metrics(previous)

    def test_outage_spans_record_rungs_and_breaker_walk(
        self, isolated_metrics
    ):
        tracer = obs.Tracer()
        service, clock = make_service(make_model(), tracer=tracer)

        for user in range(NUM_USERS):  # healthy warmup (live rung)
            service.recommend(user)
        with testing.CrashPoint(testing.SERVE_SCORE, at=1, every=1):
            for user in range(NUM_USERS):  # total outage (degraded rungs)
                service.recommend(user)
        clock.advance(1.5)
        service.recommend(0)  # recovery (half-open -> closed, live)

        records = tracer.records()
        assert obs.validate_trace(records) is None
        requests = [r for r in records if r["name"] == "serve:request"]
        assert len(requests) == 2 * NUM_USERS + 1

        # Every degradation rung the service reported is on a span, and
        # the chaos window produced both live and degraded rungs.
        levels = [r["attributes"]["level"] for r in requests]
        assert set(levels) <= set(LEVELS)
        assert LEVEL_LIVE in levels
        assert set(levels) - {LEVEL_LIVE}, "outage produced no degraded rung"
        assert service.counters.get("serve.requests") == len(requests)
        assert service.counters.get("serve.degraded") == sum(
            1 for level in levels if level != LEVEL_LIVE
        )

        # The breaker walk (closed during outage onset, open once it
        # trips, closed again after recovery) is visible on the spans...
        breaker_states = [r["attributes"]["breaker"] for r in requests]
        assert "open" in breaker_states
        assert breaker_states[0] == "closed"
        assert breaker_states[-1] == "closed"
        # ...and each transition is counted.
        assert service.counters.get("serve.breaker.open") >= 1
        assert service.counters.get("serve.breaker.half_open") >= 1
        assert service.counters.get("serve.breaker.closed") >= 1

        # Live-scoring attempts nest under their request span.
        attempts = [r for r in records if r["name"] == "serve:attempt"]
        request_ids = {r["span_id"] for r in requests}
        assert attempts
        assert all(a["parent_id"] in request_ids for a in attempts)

        # Every answered request fed the latency histogram.
        hist = isolated_metrics.histograms()["serve.request_seconds"]
        assert hist.count == len(requests)

    def test_latency_chaos_tags_deadline_hits(self, isolated_metrics):
        tracer = obs.Tracer()
        clock = FakeClock()
        service, _ = make_service(
            make_model(), clock=clock, default_deadline=0.05, tracer=tracer
        )
        with testing.Latency(
            testing.SERVE_SCORE, seconds=0.2,
            sleep=lambda seconds: clock.advance(seconds),
        ):
            for user in range(NUM_USERS):
                service.recommend(user)
        requests = [
            r for r in tracer.records() if r["name"] == "serve:request"
        ]
        assert len(requests) == NUM_USERS
        deadline_hits = [
            r for r in requests if r["attributes"]["deadline_hit"]
        ]
        assert len(deadline_hits) >= 1
        assert all(
            r["attributes"]["level"] != LEVEL_LIVE for r in deadline_hits
        )
        retried = [r for r in requests if r["attributes"]["retries"] > 0]
        assert all(r["attributes"]["retries"] >= 0 for r in requests)
        del retried  # retry counts are config-dependent; range-check only

    def test_disabled_tracer_leaves_no_spans(self):
        tracer = obs.Tracer(enabled=False)
        service, _ = make_service(make_model(), tracer=tracer)
        with testing.CrashPoint(testing.SERVE_SCORE, at=1, every=1):
            for user in range(4):
                assert_valid_response(service.recommend(user))
        assert len(tracer) == 0
