"""Chaos tests: the service keeps answering under injected failure.

The acceptance contract for :mod:`repro.serve`: with crashes, write
corruption, and latency armed on the ``serve:score`` / ``serve:reload``
fault sites, every request still returns a valid top-N (degradation
level recorded, zero unhandled exceptions), the breaker opens and
recovers half-open → closed, and a corrupt candidate checkpoint never
replaces the live model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import testing
from repro.ckpt import CheckpointManager
from repro.models import BPRMF
from repro.serve import (
    LEVEL_LIVE,
    LEVELS,
    CheckpointModelProvider,
    CircuitBreaker,
    RecommendationService,
    RetryPolicy,
)

from .test_breaker import FakeClock

NUM_USERS, NUM_ITEMS, DIM = 8, 12, 4


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    testing.reset()


def make_model(seed: int = 0) -> BPRMF:
    return BPRMF(NUM_USERS, NUM_ITEMS, DIM, rng=np.random.default_rng(seed))


def make_service(model_or_provider, clock=None, **kwargs):
    clock = clock or FakeClock()
    defaults = dict(
        popularity=np.arange(NUM_ITEMS),
        default_top_n=4,
        retry=RetryPolicy(max_attempts=2, base_delay=0.001),
        breaker=CircuitBreaker(
            failure_threshold=3, recovery_time=1.0, clock=clock
        ),
        clock=clock,
        sleep=lambda seconds: clock.advance(seconds),
    )
    defaults.update(kwargs)
    return RecommendationService(model_or_provider, **defaults), clock


def assert_valid_response(response, exclude=frozenset()):
    """A chaos-proof answer: non-empty, in-range, deduplicated, level
    recorded, excluded items absent."""
    assert response.level in LEVELS
    items = response.items
    assert items.size > 0
    assert items.size == np.unique(items).size
    assert items.min() >= 0 and items.max() < NUM_ITEMS
    assert not set(items.tolist()) & set(exclude)


class TestScoreCrashChaos:
    def test_every_request_answered_and_breaker_recovers(self):
        service, clock = make_service(make_model())
        exclude = {0, 1}

        # Warm the stale cache while healthy.
        for user in range(NUM_USERS):
            assert_valid_response(service.recommend(user, exclude=exclude), exclude)

        # Total scoring outage: every hit on serve:score crashes.
        with testing.CrashPoint(testing.SERVE_SCORE, at=1, every=1) as fault:
            for user in range(NUM_USERS):
                response = service.recommend(user, exclude=exclude)
                assert_valid_response(response, exclude)
                assert response.degraded  # never pretends to be live
            assert fault.triggered
        assert service.counters.get("serve.breaker.open") >= 1
        assert service.breaker.state == "open"

        # Outage over: breaker walks open -> half-open -> closed.
        clock.advance(1.5)
        response = service.recommend(0, exclude=exclude)
        assert response.level == LEVEL_LIVE
        assert response.breaker_state == "closed"
        assert service.counters.get("serve.breaker.half_open") >= 1
        assert service.counters.get("serve.breaker.closed") >= 1
        assert service.counters.get("serve.degraded") == NUM_USERS

    def test_stale_cache_personalises_degraded_answers(self):
        service, _ = make_service(make_model())
        live = service.recommend(3)
        with testing.CrashPoint(testing.SERVE_SCORE, at=1, every=1):
            stale = service.recommend(3)
        assert stale.level == "stale"
        np.testing.assert_array_equal(stale.items, live.items)

    def test_intermittent_failures_ride_on_retry(self):
        # Crash hits 1, 3, 5, ... — every first attempt fails, every
        # retry succeeds, so responses stay live throughout.
        service, _ = make_service(make_model())
        with testing.CrashPoint(testing.SERVE_SCORE, at=1, every=2):
            for user in range(4):
                response = service.recommend(user)
                assert response.level == LEVEL_LIVE
                assert response.retries == 1
        assert service.counters.get("serve.breaker.open", ) == 0


class TestLatencyChaos:
    def test_injected_latency_fires_deadlines(self):
        clock = FakeClock()
        service, _ = make_service(
            make_model(), clock=clock, default_deadline=0.05
        )
        # The armed latency advances the service's own clock, so the
        # deadline genuinely expires mid-request.
        with testing.Latency(
            testing.SERVE_SCORE, seconds=0.2,
            sleep=lambda seconds: clock.advance(seconds),
        ) as fault:
            for user in range(NUM_USERS):
                response = service.recommend(user)
                assert_valid_response(response)
                assert response.degraded
                # Until the breaker opens, every slow attempt burns its
                # deadline; afterwards requests short-circuit untouched.
                if response.breaker_state == "closed":
                    assert response.deadline_hit
            assert fault.hits > 0
        assert service.counters.get("serve.deadline_exceeded") >= 3
        assert service.counters.get("serve.breaker.open") >= 1  # slow is broken

    def test_fast_requests_unaffected_by_armed_deadline(self):
        service, _ = make_service(make_model(), default_deadline=0.05)
        response = service.recommend(0)
        assert response.level == LEVEL_LIVE
        assert not response.deadline_hit


class TestReloadChaos:
    def _provider_with_live_model(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        good = make_model(seed=1)
        manager.save(
            {"fingerprint": "fp", "step": 1, "model": good.state_dict()},
            step=1,
        )
        provider = CheckpointModelProvider(
            str(tmp_path),
            builder=make_model,
        )
        assert provider.poll() == "reloaded"
        return manager, provider, good

    def test_corrupt_candidate_never_replaces_live_model(self, tmp_path):
        manager, provider, good = self._provider_with_live_model(tmp_path)
        service, _ = make_service(provider)
        with testing.FaultyWrites(
            testing.CKPT_PAYLOAD_WRITE, mode="truncate", fraction=0.3
        ):
            manager.save(
                {"fingerprint": "fp", "step": 2,
                 "model": make_model(2).state_dict()},
                step=2,
            )
        with pytest.warns(RuntimeWarning):
            assert service.poll_reload() == "rejected"
        assert service.counters.get("serve.reload.rejected") == 1
        # Serving continues on the pre-corruption model.
        response = service.recommend(0)
        assert response.level == LEVEL_LIVE
        assert response.model_version == "ckpt-step-1"
        np.testing.assert_allclose(
            service.provider.model().all_scores(np.array([0])),
            good.all_scores(np.array([0])),
        )

    def test_crash_during_reload_keeps_serving(self, tmp_path):
        manager, provider, _ = self._provider_with_live_model(tmp_path)
        service, _ = make_service(provider, reload_every=2)
        manager.save(
            {"fingerprint": "fp", "step": 2,
             "model": make_model(2).state_dict()},
            step=2,
        )
        with testing.CrashPoint(testing.SERVE_RELOAD, at=1, every=1):
            with pytest.warns(RuntimeWarning):
                for user in range(4):
                    assert_valid_response(service.recommend(user))
        assert service.counters.get("serve.reload.rejected") == 2
        assert service.provider.version() == "ckpt-step-1"
        # Disarmed: the very next piggybacked poll promotes the update.
        service.recommend(0)
        service.recommend(0)
        assert service.provider.version() == "ckpt-step-2"
        assert service.counters.get("serve.reload.reloaded") == 1


class TestCombinedChaos:
    def test_full_matrix_never_raises(self, tmp_path):
        """Crash + latency + reload corruption armed together."""
        manager, provider, _ = (
            TestReloadChaos()._provider_with_live_model(tmp_path)
        )
        clock = FakeClock()
        service, _ = make_service(
            provider, clock=clock, default_deadline=0.05, reload_every=3
        )
        with testing.FaultyWrites(
            testing.CKPT_PAYLOAD_WRITE, mode="garble", fraction=0.5
        ):
            manager.save(
                {"fingerprint": "fp", "step": 2,
                 "model": make_model(3).state_dict()},
                step=2,
            )
        answered = 0
        with testing.CrashPoint(testing.SERVE_SCORE, at=2, every=3):
            with testing.Latency(
                testing.SERVE_SCORE, seconds=0.2, at=5,
                sleep=lambda seconds: clock.advance(seconds),
            ):
                with pytest.warns(RuntimeWarning):
                    for index in range(12):
                        user = index % NUM_USERS
                        response = service.recommend(user, exclude={2})
                        assert_valid_response(response, exclude={2})
                        answered += 1
        assert answered == 12
        assert service.provider.version() == "ckpt-step-1"
        counters = service.counters
        assert counters.get("serve.reload.rejected") >= 1
        assert counters.get("serve.degraded") >= 1
        assert counters.get("serve.requests") == 12
