"""Circuit-breaker state machine tests (deterministic fake clock)."""

from __future__ import annotations

import pytest

from repro.serve import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make(clock, **kwargs):
    defaults = dict(failure_threshold=3, recovery_time=10.0, half_open_probes=1)
    defaults.update(kwargs)
    return CircuitBreaker(clock=clock, **defaults)


class TestClosed:
    def test_starts_closed_and_allows(self):
        breaker = make(FakeClock())
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_success_resets_consecutive_failures(self):
        breaker = make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never 3 consecutive

    def test_trips_open_at_threshold(self):
        breaker = make(FakeClock())
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()


class TestRecovery:
    def test_half_open_after_recovery_time(self):
        clock = FakeClock()
        breaker = make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(9.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_half_open_limits_probes(self):
        clock = FakeClock()
        breaker = make(clock, half_open_probes=2)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # both probes already in flight

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_clock(self):
        clock = FakeClock()
        breaker = make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.0)
        assert breaker.state == OPEN  # recovery clock restarted
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN

    def test_multi_probe_close_requires_all_successes(self):
        clock = FakeClock()
        breaker = make(clock, half_open_probes=2)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow() and breaker.allow()
        breaker.record_success()
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED


class TestTransitions:
    def test_on_transition_sequence(self):
        clock = FakeClock()
        seen = []
        breaker = CircuitBreaker(
            failure_threshold=1,
            recovery_time=5.0,
            clock=clock,
            on_transition=lambda old, new: seen.append((old, new)),
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert seen == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]

    def test_reset_force_closes(self):
        breaker = make(FakeClock(), failure_threshold=1)
        breaker.record_failure()
        assert breaker.state == OPEN
        breaker.reset()
        assert breaker.state == CLOSED
        assert breaker.allow()


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"recovery_time": -1.0},
            {"half_open_probes": 0},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)
