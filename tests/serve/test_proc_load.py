"""Acceptance: SIGKILL/hang chaos under Zipf load vs a real process pool.

The headline robustness gate (also run by ``make proc-smoke``): a
seeded Zipf trace is driven closed-loop against a 4-worker pool of
**forked subprocesses** while the fault windows SIGKILL two workers and
stall a third mid-run.  The run must end with zero errored responses,
every killed worker respawned by the supervisor (or circuit-disabled),
and the supervision counters visible in the exported obs snapshot —
written through the crash-safe atomic path.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import testing
from repro.ckpt import CheckpointManager
from repro.models import BPRMF
from repro.obs import MetricsRegistry, parse_prometheus, write_metrics
from repro.serve import (
    FaultWindow,
    LEVEL_LIVE,
    ProcessPool,
    WorkerSpec,
    ZipfTraffic,
    run_load,
)
from repro.serve.provider import RELOADED

from .test_proc import wait_until

NUM_USERS, NUM_ITEMS, DIM = 64, 16, 8
POPULARITY = np.arange(NUM_ITEMS, dtype=np.float64)
FINGERPRINT = "fp-proc-load"


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    testing.reset()


def make_model():
    return BPRMF(NUM_USERS, NUM_ITEMS, DIM, rng=np.random.default_rng(3))


def snapshot(model, step):
    return {
        "fingerprint": FINGERPRINT,
        "step": step,
        "model": model.state_dict(),
    }


def make_pool(checkpoint_dir, metrics, **overrides):
    spec = WorkerSpec(
        builder=make_model,
        checkpoint_dir=checkpoint_dir,
        popularity=POPULARITY,
        default_top_n=3,
        breaker_recovery=0.1,
    )
    settings = dict(
        supervisor_interval=0.05,
        heartbeat_timeout=0.25,
        max_missed=2,
        request_timeout=0.5,
        down_cooldown=0.1,
        metrics=metrics,
    )
    settings.update(overrides)
    return ProcessPool(spec, 4, **settings)


def test_chaos_under_load_never_errors_and_respawns(tmp_path):
    manager = CheckpointManager(str(tmp_path / "ckpt"))
    manager.save(snapshot(make_model(), 1), step=1)
    metrics = MetricsRegistry()
    traffic = ZipfTraffic(
        num_users=NUM_USERS, requests=360, rps=400.0, skew=1.1, seed=11
    )
    faults = (
        FaultWindow(start=60, stop=61, kind="proc-kill", worker=0),
        FaultWindow(start=150, stop=151, kind="proc-kill", worker=1),
        FaultWindow(
            start=240, stop=241, kind="proc-hang", worker=2, seconds=1.5
        ),
    )
    with make_pool(str(tmp_path / "ckpt"), metrics) as pool:
        report = run_load(
            pool,
            traffic,
            concurrency=6,
            pace=False,
            faults=faults,
            top_n=3,
            metrics=metrics,
        )
        stats = report.summary()

        # The never-error contract under real process chaos.
        assert stats["requests"] == 360
        assert stats["errors"] == 0
        assert stats["responses_by_level"].get(LEVEL_LIVE, 0) > 0

        # Every worker ends the run respawned (or circuit-disabled) —
        # give the supervisor a moment to finish in-flight respawns.
        def settled():
            status = pool.supervisor.status()
            return all(
                (entry["alive"] and not entry["broken"])
                or entry["disabled"]
                for entry in status
            )

        assert wait_until(settled, timeout=10.0)
        # Both SIGKILL victims (and the convicted hang) came back.
        assert wait_until(
            lambda: metrics.get("serve.supervisor.restarts") >= 3,
            timeout=10.0,
        )
        assert metrics.get("serve.supervisor.worker.0.restarts") >= 1
        assert metrics.get("serve.supervisor.worker.1.restarts") >= 1
        assert metrics.get("serve.supervisor.hangs") >= 1
        assert metrics.get("serve.supervisor.heartbeat_misses") >= 2

        # The pool still serves live traffic after the storm.
        assert pool.recommend(7, top_n=3).level == LEVEL_LIVE

    # Supervision counters made it into the load report's snapshot...
    counters = report.metrics_snapshot["counters"]
    assert counters.get("serve.pool.requests", 0) >= 360
    # ...and survive a crash-safe export round trip.
    out = str(tmp_path / "metrics.prom")
    write_metrics(metrics, out)
    parsed = parse_prometheus(open(out, encoding="utf-8").read())
    assert "repro_serve_supervisor_restarts_total" in parsed
    assert "repro_serve_supervisor_heartbeat_misses_total" in parsed
    leftovers = [
        name for name in os.listdir(str(tmp_path)) if name.endswith(".tmp")
    ]
    assert leftovers == []


def test_hot_reload_under_process_backend(tmp_path):
    directory = str(tmp_path / "ckpt")
    manager = CheckpointManager(directory)
    manager.save(snapshot(make_model(), 1), step=1)
    metrics = MetricsRegistry()
    with make_pool(directory, metrics) as pool:
        before = pool.recommend(5, top_n=3)
        assert before.model_version == "ckpt-step-1"
        manager.save(snapshot(make_model(), 2), step=2)
        outcomes = pool.poll_reload()
        assert outcomes == [RELOADED] * 4
        after = pool.recommend(5, top_n=3)
        assert after.model_version == "ckpt-step-2"


def test_kill_during_sustained_load_with_reroute_accounting(tmp_path):
    """A focused two-kill run asserting the reroute counters move."""
    directory = str(tmp_path / "ckpt")
    CheckpointManager(directory).save(snapshot(make_model(), 1), step=1)
    metrics = MetricsRegistry()
    traffic = ZipfTraffic(
        num_users=NUM_USERS, requests=200, rps=400.0, skew=1.3, seed=5
    )
    with make_pool(directory, metrics) as pool:
        counts = np.bincount(
            [request.user for request in traffic.trace()],
            minlength=NUM_USERS,
        )
        hot_shard = pool.shard_map.shard_of(int(counts.argmax()))
        faults = (
            FaultWindow(start=30, stop=31, kind="proc-kill", worker=hot_shard),
            FaultWindow(
                start=120, stop=121, kind="proc-kill", worker=hot_shard
            ),
        )
        report = run_load(
            pool,
            traffic,
            concurrency=4,
            pace=False,
            faults=faults,
            top_n=3,
            metrics=metrics,
        )
        stats = report.summary()
        assert stats["errors"] == 0
        # Killing the hottest shard forces visible failover.
        assert stats["rerouted"] > 0
        assert metrics.get("serve.pool.worker_error") > 0
        assert wait_until(
            lambda: metrics.get(
                f"serve.supervisor.worker.{hot_shard}.restarts"
            ) >= 1,
            timeout=10.0,
        )
