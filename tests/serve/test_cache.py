"""TTL'd LRU stale-response cache tests."""

from __future__ import annotations

import pytest

from repro.serve import TTLCache

from .test_breaker import FakeClock


class TestTTL:
    def test_hit_before_expiry(self):
        clock = FakeClock()
        cache = TTLCache(max_entries=4, ttl=10.0, clock=clock)
        cache.put("u1", [1, 2, 3])
        clock.advance(9.9)
        assert cache.get("u1") == [1, 2, 3]

    def test_expires_exactly_at_ttl(self):
        clock = FakeClock()
        cache = TTLCache(max_entries=4, ttl=10.0, clock=clock)
        cache.put("u1", [1])
        clock.advance(10.0)
        assert cache.get("u1") is None
        assert len(cache) == 0  # expired entry dropped on sight

    def test_put_refreshes_ttl(self):
        clock = FakeClock()
        cache = TTLCache(max_entries=4, ttl=10.0, clock=clock)
        cache.put("u1", [1])
        clock.advance(8.0)
        cache.put("u1", [2])
        clock.advance(8.0)
        assert cache.get("u1") == [2]

    def test_purge_expired(self):
        clock = FakeClock()
        cache = TTLCache(max_entries=8, ttl=5.0, clock=clock)
        cache.put("a", 1)
        clock.advance(3.0)
        cache.put("b", 2)
        clock.advance(3.0)  # "a" expired, "b" alive
        assert cache.purge_expired() == 1
        assert len(cache) == 1
        assert cache.get("b") == 2


class TestLRU:
    def test_evicts_least_recently_used(self):
        clock = FakeClock()
        cache = TTLCache(max_entries=2, ttl=100.0, clock=clock)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh recency of "a"
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_contains_respects_expiry(self):
        clock = FakeClock()
        cache = TTLCache(max_entries=2, ttl=1.0, clock=clock)
        cache.put("a", 1)
        assert "a" in cache
        clock.advance(2.0)
        assert "a" not in cache

    def test_clear(self):
        cache = TTLCache(max_entries=2, ttl=1.0, clock=FakeClock())
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0


class TestValidation:
    @pytest.mark.parametrize("kwargs", [{"max_entries": 0}, {"ttl": 0.0}])
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            TTLCache(**kwargs)
