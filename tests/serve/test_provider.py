"""Hot-reload provider tests: validation gate, canary, rollback."""

from __future__ import annotations

import numpy as np
import pytest

from repro import testing
from repro.ckpt import CheckpointManager
from repro.models import BPRMF
from repro.serve import (
    REJECTED,
    RELOADED,
    ROLLED_BACK,
    UNCHANGED,
    CheckpointModelProvider,
    ModelUnavailable,
)

NUM_USERS, NUM_ITEMS, DIM = 4, 6, 4
FINGERPRINT = "fp-serving"


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    testing.reset()


def make_model(seed: int = 0) -> BPRMF:
    return BPRMF(NUM_USERS, NUM_ITEMS, DIM, rng=np.random.default_rng(seed))


def snapshot(model: BPRMF, step: int, fingerprint: str = FINGERPRINT) -> dict:
    return {"fingerprint": fingerprint, "step": step, "model": model.state_dict()}


def make_provider(directory: str) -> CheckpointModelProvider:
    return CheckpointModelProvider(str(directory), builder=make_model)


class TestLoading:
    def test_unready_before_any_snapshot(self, tmp_path):
        provider = make_provider(tmp_path / "ckpts")
        assert provider.poll() == UNCHANGED
        assert not provider.ready()
        assert provider.version() == "unloaded"
        with pytest.raises(ModelUnavailable):
            provider.model()

    def test_first_poll_loads_newest(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        source = make_model(seed=1)
        manager.save(snapshot(source, 1), step=1)
        provider = make_provider(tmp_path)
        assert provider.poll() == RELOADED
        assert provider.ready()
        assert provider.version() == "ckpt-step-1"
        np.testing.assert_allclose(
            provider.model().all_scores(np.array([0])),
            source.all_scores(np.array([0])),
        )

    def test_unchanged_when_no_newer_snapshot(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save(snapshot(make_model(1), 1), step=1)
        provider = make_provider(tmp_path)
        assert provider.poll() == RELOADED
        assert provider.poll() == UNCHANGED

    def test_newer_snapshot_swaps_in(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save(snapshot(make_model(1), 1), step=1)
        provider = make_provider(tmp_path)
        provider.poll()
        newer = make_model(seed=2)
        manager.save(snapshot(newer, 2), step=2)
        assert provider.poll() == RELOADED
        assert provider.version() == "ckpt-step-2"
        np.testing.assert_allclose(
            provider.model().all_scores(np.array([1])),
            newer.all_scores(np.array([1])),
        )


class TestValidationGate:
    def test_corrupt_candidate_never_replaces_live_model(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        good = make_model(1)
        manager.save(snapshot(good, 1), step=1)
        provider = make_provider(tmp_path)
        provider.poll()
        # The manifest checksum is computed before the corruption, so
        # the garbled payload fails verification at reload time.
        with testing.FaultyWrites(
            testing.CKPT_PAYLOAD_WRITE, mode="garble", fraction=0.6
        ):
            manager.save(snapshot(make_model(2), 2), step=2)
        with pytest.warns(RuntimeWarning, match="refusing checkpoint"):
            assert provider.poll() == REJECTED
        assert provider.version() == "ckpt-step-1"
        np.testing.assert_allclose(
            provider.model().all_scores(np.array([0])),
            good.all_scores(np.array([0])),
        )

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save(snapshot(make_model(1), 1), step=1)
        provider = make_provider(tmp_path)
        provider.poll()
        manager.save(
            snapshot(make_model(2), 2, fingerprint="fp-other"), step=2
        )
        with pytest.warns(RuntimeWarning, match="fingerprint"):
            assert provider.poll() == REJECTED
        assert provider.version() == "ckpt-step-1"

    def test_expected_fingerprint_pins_first_load(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save(snapshot(make_model(1), 1), step=1)
        provider = CheckpointModelProvider(
            str(tmp_path), builder=make_model, expected_fingerprint="fp-prod"
        )
        with pytest.warns(RuntimeWarning, match="fingerprint"):
            assert provider.poll() == REJECTED
        assert not provider.ready()

    def test_snapshot_without_model_state_rejected(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save({"fingerprint": FINGERPRINT, "step": 1}, step=1)
        provider = make_provider(tmp_path)
        with pytest.warns(RuntimeWarning, match="no model state"):
            assert provider.poll() == REJECTED

    def test_crash_during_reload_is_contained(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        good = make_model(1)
        manager.save(snapshot(good, 1), step=1)
        provider = make_provider(tmp_path)
        provider.poll()
        manager.save(snapshot(make_model(2), 2), step=2)
        with testing.CrashPoint(testing.SERVE_RELOAD):
            with pytest.warns(RuntimeWarning, match="refusing checkpoint"):
                assert provider.poll() == REJECTED
        assert provider.version() == "ckpt-step-1"
        # Once the crash is disarmed the same candidate promotes fine.
        assert provider.poll() == RELOADED


class TestCanary:
    def test_nan_candidate_rolls_back(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        good = make_model(1)
        manager.save(snapshot(good, 1), step=1)
        provider = make_provider(tmp_path)
        provider.poll()
        broken = {
            key: np.full_like(value, np.nan)
            for key, value in make_model(2).state_dict().items()
        }
        manager.save(
            {"fingerprint": FINGERPRINT, "step": 2, "model": broken}, step=2
        )
        with pytest.warns(RuntimeWarning, match="canary probe failed"):
            assert provider.poll() == ROLLED_BACK
        assert provider.version() == "ckpt-step-1"
        np.testing.assert_allclose(
            provider.model().all_scores(np.array([0])),
            good.all_scores(np.array([0])),
        )
