"""Tests for result archival and Markdown rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import compare_results, load_results, save_results, to_markdown
from repro.bench.harness import CellResult


def make_cell(recall=0.2, ndcg=0.1, dataset="d1", method="m"):
    return CellResult(
        dataset=dataset, method=method, recall=recall, ndcg=ndcg,
        wall_time=1.5, epochs_run=10,
        per_user_recall=np.array([0.1, 0.3]),
    )


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        results = {"d1": {"BPRMF": make_cell(0.25)}}
        path = str(tmp_path / "results.json")
        save_results(results, path)
        loaded = load_results(path)
        assert loaded["d1"]["BPRMF"]["recall"] == 0.25
        assert loaded["d1"]["BPRMF"]["epochs_run"] == 10

    def test_per_user_vectors_not_serialised(self, tmp_path):
        results = {"d1": {"m": make_cell()}}
        path = str(tmp_path / "r.json")
        save_results(results, path)
        assert "per_user" not in open(path).read()


class TestMarkdown:
    def test_renders_grid(self):
        results = {
            "d1": {"A": make_cell(0.5), "B": make_cell(0.25)},
        }
        text = to_markdown(results, ["A", "B"], ["d1"])
        assert "| A | 50.00 |" in text
        assert "| B | 25.00 |" in text
        assert text.startswith("| Model |")

    def test_missing_cells_dashed(self):
        text = to_markdown({}, ["A"], ["d1"])
        assert "| A | - |" in text

    def test_metric_validated(self):
        with pytest.raises(ValueError):
            to_markdown({}, [], [], metric="precision")

    def test_ndcg_metric(self):
        results = {"d1": {"A": make_cell(0.5, ndcg=0.4)}}
        text = to_markdown(results, ["A"], ["d1"], metric="ndcg")
        assert "40.00" in text


class TestCompare:
    def test_relative_deltas(self, tmp_path):
        old = {"d1": {"A": make_cell(0.2)}}
        path = str(tmp_path / "old.json")
        save_results(old, path)
        baseline = load_results(path)
        current = {"d1": {"A": make_cell(0.25)}}
        deltas = compare_results(baseline, current)
        assert deltas["d1"]["A"] == pytest.approx(0.25)

    def test_skips_unknown_entries(self):
        baseline = {"d1": {"A": {"recall": 0.2}}}
        current = {"d2": {"A": make_cell()}, "d1": {"B": make_cell()}}
        deltas = compare_results(baseline, current)
        assert deltas == {}

    def test_zero_baseline_skipped(self):
        baseline = {"d1": {"A": {"recall": 0.0}}}
        current = {"d1": {"A": make_cell(0.2)}}
        assert compare_results(baseline, current) == {}
