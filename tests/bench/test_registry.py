"""Tests for the method registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import ABLATIONS, METHODS, build_imcat_recipe
from repro.core import IMCATConfig


class TestRegistryContents:
    def test_fifteen_table2_methods(self):
        assert len(METHODS) == 15

    def test_paper_method_names_present(self):
        expected = {
            "BPRMF", "NeuMF", "LightGCN", "CFA", "DSPR", "TGCN",
            "CKE", "RippleNet", "KGAT", "KGIN", "SGL", "KGCL",
            "B-IMCAT", "N-IMCAT", "L-IMCAT",
        }
        assert set(METHODS) == expected

    def test_ablation_variants(self):
        for prefix in ("N", "L"):
            for suffix in ("", " w/o UIT", " w/o UT", " w/o UI", " w/o NLT"):
                assert f"{prefix}-IMCAT{suffix}" in ABLATIONS

    def test_build_imcat_recipe_validates_backbone(self):
        with pytest.raises(KeyError, match="unknown backbone"):
            build_imcat_recipe("transformer", IMCATConfig())

    def test_build_imcat_recipe_returns_callable(self):
        recipe = build_imcat_recipe("bprmf", IMCATConfig(num_intents=2))
        assert callable(recipe)


class TestRecipeExecution:
    def test_simple_recipe_trains(self, small_dataset, small_split):
        trained = METHODS["BPRMF"](
            small_dataset, small_split, 16, seed=0, epochs=2, batch_size=128
        )
        assert trained.wall_time > 0
        assert trained.epochs_run == 2
        scores = trained.model.all_scores(np.array([0]))
        assert scores.shape == (1, small_dataset.num_items)

    def test_imcat_recipe_trains(self, small_dataset, small_split):
        trained = METHODS["B-IMCAT"](
            small_dataset, small_split, 16, seed=0, epochs=2, batch_size=128
        )
        assert trained.model.all_scores(np.array([0])).shape == (
            1, small_dataset.num_items,
        )

    def test_ablation_recipe_disables_alignment(self, small_dataset, small_split):
        trained = ABLATIONS["N-IMCAT w/o UIT"](
            small_dataset, small_split, 16, seed=0, epochs=1, batch_size=128
        )
        assert not trained.model.config.use_alignment
