"""Tests for the hyper-parameter grid search."""

from __future__ import annotations

import pytest

from repro.bench import PAPER_GRID, SweepResult, Trial, grid_search
from repro.core import IMCATConfig


class TestPaperGrid:
    def test_matches_section_vd(self):
        assert PAPER_GRID["alpha"] == (1e-3, 1e-2, 1e-1, 1.0, 5.0, 10.0)
        assert PAPER_GRID["delta"] == (0.1, 0.3, 0.5, 0.7, 0.9)
        assert PAPER_GRID["num_intents"] == (1, 2, 4, 8, 16)


class TestSweepResult:
    def test_best_requires_trials(self):
        with pytest.raises(ValueError):
            SweepResult().best

    def test_best_picks_highest_metric(self):
        result = SweepResult(
            trials=[
                Trial({"beta": 0.1}, 0.2, 1.0),
                Trial({"beta": 1.0}, 0.5, 1.0),
                Trial({"beta": 10.0}, 0.3, 1.0),
            ]
        )
        assert result.best.params == {"beta": 1.0}

    def test_best_config_applies_params(self):
        result = SweepResult(trials=[Trial({"beta": 5.0, "delta": 0.5}, 0.4, 1.0)])
        config = result.best_config(IMCATConfig())
        assert config.beta == 5.0
        assert config.delta == 0.5
        assert config.alpha == IMCATConfig().alpha  # untouched default

    def test_table_sorted_best_first(self):
        result = SweepResult(
            trials=[Trial({"beta": 0.1}, 0.2, 1.0), Trial({"beta": 1.0}, 0.5, 1.0)]
        )
        rows = result.table()
        assert rows[0][1] == 0.5


class TestGridSearch:
    def test_empty_grid_rejected(self, small_dataset, small_split):
        with pytest.raises(ValueError):
            grid_search("bprmf", small_dataset, small_split, {})

    def test_searches_and_ranks(self, small_dataset, small_split):
        result = grid_search(
            "bprmf", small_dataset, small_split,
            {"beta": (0.0, 0.1)},
            embed_dim=16, epochs=2, batch_size=128,
        )
        assert len(result.trials) == 2
        assert {t.params["beta"] for t in result.trials} == {0.0, 0.1}
        assert all(t.wall_time > 0 for t in result.trials)

    def test_invalid_combinations_skipped(self, small_dataset, small_split):
        # K=3 does not divide embed_dim=16: silently skipped.
        result = grid_search(
            "bprmf", small_dataset, small_split,
            {"num_intents": (2, 3, 4)},
            embed_dim=16, epochs=1, batch_size=128,
        )
        assert {t.params["num_intents"] for t in result.trials} == {2, 4}

    def test_max_trials_caps(self, small_dataset, small_split):
        result = grid_search(
            "bprmf", small_dataset, small_split,
            {"beta": (0.0, 0.1, 0.5, 1.0)},
            embed_dim=16, epochs=1, batch_size=128, max_trials=2,
        )
        assert len(result.trials) == 2
