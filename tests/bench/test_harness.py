"""Tests for the benchmark harness."""

from __future__ import annotations

import pytest

from repro.bench import BenchSettings, prepare_split, run_method, run_table


FAST = BenchSettings(scale=0.04, embed_dim=16, epochs=2, batch_size=128)


class TestPrepareSplit:
    def test_returns_dataset_and_split(self):
        dataset, split = prepare_split("hetrec-del", FAST)
        assert dataset.num_users > 0
        assert split.train.num_interactions > 0

    def test_deterministic(self):
        a_ds, a_split = prepare_split("hetrec-del", FAST)
        b_ds, b_split = prepare_split("hetrec-del", FAST)
        assert a_ds.num_interactions == b_ds.num_interactions
        assert a_split.train.num_interactions == b_split.train.num_interactions


class TestRunMethod:
    def test_unknown_method_lists_choices(self):
        with pytest.raises(KeyError, match="available"):
            run_method("hetrec-del", "GPT-Rec", FAST)

    def test_cell_result_fields(self):
        cell = run_method("hetrec-del", "BPRMF", FAST)
        assert cell.dataset == "hetrec-del"
        assert cell.method == "BPRMF"
        assert 0.0 <= cell.recall <= 1.0
        assert 0.0 <= cell.ndcg <= 1.0
        assert cell.wall_time > 0
        assert len(cell.per_user_recall) > 0

    def test_keep_model_flag(self):
        cell = run_method("hetrec-del", "BPRMF", FAST, keep_model=True)
        assert cell.trained is not None
        cell2 = run_method("hetrec-del", "BPRMF", FAST)
        assert cell2.trained is None

    def test_ablation_method_accessible(self):
        cell = run_method("hetrec-del", "N-IMCAT w/o NLT", FAST)
        assert cell.recall >= 0.0


class TestRunTable:
    def test_grid_structure(self):
        results = run_table(["hetrec-del"], ["BPRMF", "LightGCN"], FAST)
        assert set(results) == {"hetrec-del"}
        assert set(results["hetrec-del"]) == {"BPRMF", "LightGCN"}

    def test_shared_split_across_methods(self):
        results = run_table(["hetrec-del"], ["BPRMF", "LightGCN"], FAST)
        a = results["hetrec-del"]["BPRMF"]
        b = results["hetrec-del"]["LightGCN"]
        assert len(a.per_user_recall) == len(b.per_user_recall)


class TestMultiSeed:
    def test_empty_seeds_rejected(self):
        from repro.bench import run_method_seeds

        with pytest.raises(ValueError):
            run_method_seeds("hetrec-del", "BPRMF", [], FAST)

    def test_averages_over_seeds(self):
        from repro.bench import run_method, run_method_seeds

        mean_cell = run_method_seeds("hetrec-del", "BPRMF", [1, 2], FAST)
        a = run_method("hetrec-del", "BPRMF", FAST.__class__(**{**FAST.__dict__, "train_seed": 1}))
        b = run_method("hetrec-del", "BPRMF", FAST.__class__(**{**FAST.__dict__, "train_seed": 2}))
        assert mean_cell.recall == pytest.approx((a.recall + b.recall) / 2)
        assert len(mean_cell.per_user_recall) == len(a.per_user_recall)
