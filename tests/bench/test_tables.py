"""Tests for table/series formatting."""

from __future__ import annotations

import numpy as np

from repro.bench import format_series, format_table, format_table2, normalize_series
from repro.bench.harness import CellResult


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [[1.0, "x"], [2.5, "yy"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.00" in text
        assert "yy" in text

    def test_no_title(self):
        text = format_table(["a"], [[1]])
        assert not text.startswith("\n")


class TestFormatTable2:
    def _cell(self, recall, ndcg):
        return CellResult(
            dataset="d", method="m", recall=recall, ndcg=ndcg,
            wall_time=1.0, epochs_run=1,
        )

    def test_renders_percentages(self):
        results = {"d1": {"BPRMF": self._cell(0.1234, 0.0567)}}
        text = format_table2(results, ["BPRMF"], ["d1"])
        assert "12.34" in text
        assert "5.67" in text

    def test_missing_cells_dashed(self):
        text = format_table2({}, ["BPRMF"], ["d1"])
        assert "-" in text


class TestSeries:
    def test_format_series(self):
        text = format_series("K", [1, 2, 4], {"L-IMCAT": [0.1, 0.2, 0.3]})
        assert "L-IMCAT" in text
        assert "0.30" in text

    def test_normalize_series_best_is_one(self):
        series = {"a": [1.0, 4.0], "b": [2.0, 2.0]}
        normalized = normalize_series(series)
        np.testing.assert_allclose(normalized["a"], [0.5, 1.0])
        np.testing.assert_allclose(normalized["b"], [1.0, 0.5])
