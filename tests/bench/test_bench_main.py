"""Tests for the ``python -m repro.bench`` smoke runner."""

from __future__ import annotations

import pytest

from repro.bench.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_smoke_defaults(self):
        args = build_parser().parse_args(["smoke"])
        assert args.scale == 1.0
        assert args.tolerance == 2.0
        assert not args.update_baseline


class TestMain:
    SMALL = ["--scale", "0.05", "--repeats", "1"]

    def test_smoke_without_baseline_passes(self, tmp_path, capsys):
        baseline = str(tmp_path / "missing.json")
        code = main(["smoke", *self.SMALL, "--baseline", baseline])
        out = capsys.readouterr().out
        assert code == 0
        assert "gate skipped" in out
        assert "hot-path smoke OK" in out

    def test_update_baseline_then_gate(self, tmp_path, capsys):
        baseline = str(tmp_path / "base.json")
        assert main(["smoke", *self.SMALL, "--baseline", baseline,
                     "--update-baseline"]) == 0
        # Second run gates against the freshly recorded baseline.
        assert main(["smoke", *self.SMALL, "--baseline", baseline]) == 0
        assert "hot-path smoke OK" in capsys.readouterr().out

    def test_scale_mismatch_skips_gate(self, tmp_path, capsys):
        baseline = str(tmp_path / "base.json")
        main(["smoke", *self.SMALL, "--baseline", baseline, "--update-baseline"])
        code = main(["smoke", "--scale", "0.04", "--repeats", "1",
                     "--baseline", baseline])
        assert code == 0
        assert "gate skipped" in capsys.readouterr().out

    def test_hotpaths_command_never_gates(self, tmp_path, capsys):
        baseline = str(tmp_path / "missing.json")
        code = main(["hotpaths", *self.SMALL, "--baseline", baseline])
        assert code == 0
        assert "hot paths" in capsys.readouterr().out
