"""Tests for the hot-path benchmark plumbing."""

from __future__ import annotations

import pytest

from repro.bench import (
    HOTPATH_CONFIG,
    bench_evaluator,
    bench_sampler,
    compare_to_baseline,
    format_hotpath_table,
    load_hotpath_results,
    run_hotpath_suite,
    save_hotpath_results,
)
from repro.data import generate, split_dataset


@pytest.fixture(scope="module")
def suite_payload():
    # A heavily scaled-down run: exercises the full pipeline quickly.
    return run_hotpath_suite(scale=0.05, repeats=1)


class TestSuite:
    def test_payload_shape(self, suite_payload):
        assert set(suite_payload) == {"settings", "results"}
        assert set(suite_payload["results"]) == {
            "evaluator", "sampler/user-item", "sampler/item-tag",
            "propagate/dgcf", "propagate/kgin",
        }
        assert suite_payload["settings"]["dataset"] == HOTPATH_CONFIG.name

    def test_paths_agree(self, suite_payload):
        results = suite_payload["results"]
        assert results["evaluator"]["max_abs_diff"] <= 1e-9
        assert results["sampler/user-item"]["max_abs_diff"] == 0.0
        assert results["sampler/item-tag"]["max_abs_diff"] == 0.0
        assert results["propagate/dgcf"]["max_abs_diff"] <= 1e-9
        assert results["propagate/kgin"]["max_abs_diff"] <= 1e-9

    def test_throughputs_positive(self, suite_payload):
        for result in suite_payload["results"].values():
            assert result["fast_throughput"] > 0
            assert result["reference_throughput"] > 0

    def test_preset_dataset_accepted(self):
        payload = run_hotpath_suite("hetrec-del", scale=0.02, repeats=1)
        assert payload["settings"]["dataset"] == "hetrec-del"

    def test_sampler_kind_validated(self):
        split = split_dataset(generate(HOTPATH_CONFIG.scaled(0.05), seed=1), seed=2)
        with pytest.raises(ValueError, match="kind"):
            bench_sampler(split.train, kind="bogus")

    def test_bench_evaluator_counts_users(self):
        split = split_dataset(generate(HOTPATH_CONFIG.scaled(0.05), seed=1), seed=2)
        result = bench_evaluator(split, repeats=1)
        assert result.units > 0
        assert result.name == "evaluator"


class TestPersistence:
    def test_round_trip(self, suite_payload, tmp_path):
        path = tmp_path / "BENCH_hotpaths.json"
        save_hotpath_results(suite_payload, str(path))
        assert load_hotpath_results(str(path)) == suite_payload

    def test_creates_parent_directories(self, suite_payload, tmp_path):
        path = tmp_path / "nested" / "deep" / "out.json"
        save_hotpath_results(suite_payload, str(path))
        assert path.exists()


class TestBaselineGate:
    def test_no_regression_passes(self, suite_payload):
        assert compare_to_baseline(suite_payload, suite_payload) == []

    def test_regression_detected(self, suite_payload):
        import copy

        inflated = copy.deepcopy(suite_payload)
        for result in inflated["results"].values():
            result["fast_throughput"] *= 100.0
        failures = compare_to_baseline(suite_payload, inflated, max_regression=2.0)
        assert len(failures) == len(suite_payload["results"])
        assert all("below" in f for f in failures)

    def test_missing_benchmark_detected(self, suite_payload):
        import copy

        current = copy.deepcopy(suite_payload)
        del current["results"]["evaluator"]
        failures = compare_to_baseline(current, suite_payload)
        assert any("missing" in f for f in failures)

    def test_tolerance_loosens_gate(self, suite_payload):
        import copy

        slower = copy.deepcopy(suite_payload)
        for result in slower["results"].values():
            result["fast_throughput"] /= 3.0
        assert compare_to_baseline(slower, suite_payload, max_regression=2.0)
        assert compare_to_baseline(slower, suite_payload, max_regression=4.0) == []


class TestTable:
    def test_format_contains_all_rows(self, suite_payload):
        table = format_hotpath_table(suite_payload)
        for name in suite_payload["results"]:
            assert name in table
        assert "speedup" in table
