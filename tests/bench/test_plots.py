"""Tests for the terminal plot helpers."""

from __future__ import annotations

import pytest

from repro.bench.plots import bar_chart, series_plot, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_levels(self):
        spark = sparkline([1, 2, 3, 4, 5])
        assert list(spark) == sorted(spark)

    def test_constant_series_flat(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_extremes_hit_first_and_last_level(self):
        spark = sparkline([0.0, 1.0])
        assert spark[0] == "▁"
        assert spark[1] == "█"


class TestBarChart:
    def test_longest_bar_for_peak(self):
        chart = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = chart.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_empty(self):
        assert bar_chart({}) == ""

    def test_zero_values(self):
        chart = bar_chart({"a": 0.0})
        assert "a" in chart

    def test_unit_appended(self):
        chart = bar_chart({"a": 5.0}, unit="%")
        assert "5%" in chart


class TestSeriesPlot:
    def test_contains_all_series(self):
        text = series_plot(
            [1, 2, 4], {"L-IMCAT": [0.1, 0.3, 0.2], "base": [0.1, 0.1, 0.1]},
            title="Fig",
        )
        assert "Fig" in text
        assert "L-IMCAT" in text
        assert "base" in text
        assert "0.3" in text

    def test_x_axis_labelled(self):
        text = series_plot(["a", "b"], {"s": [1.0, 2.0]})
        assert "x: a, b" in text
