"""Cross-cutting edge cases and failure-injection tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IMCAT, IMCATConfig, TagClustering
from repro.core.alignment import aggregate_users
from repro.data import BPRSampler, TagRecDataset, split_dataset
from repro.eval import Evaluator
from repro.models import BPRMF
from repro.nn import Tensor
from repro.nn import functional as F


def dense_user_dataset():
    """A user who interacted with every item (negative sampling stress)."""
    return TagRecDataset(
        num_users=2, num_items=3, num_tags=2,
        user_ids=np.array([0, 0, 0, 1]),
        item_ids=np.array([0, 1, 2, 0]),
        tag_item_ids=np.array([0, 1]), tag_ids=np.array([0, 1]),
    )


class TestSamplingEdgeCases:
    def test_exhausted_negatives_terminate(self):
        """User 0 has no valid negatives; sampling must not loop forever."""
        sampler = BPRSampler(dense_user_dataset(), seed=0)
        batch = next(sampler.epoch(batch_size=4, shuffle=False))
        assert len(batch) == 4  # returns despite the impossible user

    def test_single_interaction_dataset(self):
        ds = TagRecDataset(
            num_users=1, num_items=2, num_tags=1,
            user_ids=np.array([0]), item_ids=np.array([0]),
            tag_item_ids=np.array([0]), tag_ids=np.array([0]),
        )
        sampler = BPRSampler(ds, seed=0)
        batch = next(sampler.epoch(batch_size=10))
        assert batch.negatives[0] == 1  # the only valid negative


class TestSplitEdgeCases:
    def test_all_train_split(self, small_dataset):
        split = split_dataset(small_dataset, ratios=(1.0, 0.0, 0.0), seed=0)
        assert split.valid.num_interactions == 0
        assert split.test.num_interactions == 0
        assert (
            split.train.num_interactions
            == len(set(zip(small_dataset.user_ids, small_dataset.item_ids)))
        )


class TestEvaluatorEdgeCases:
    def test_cutoff_beyond_catalogue(self):
        train = dense_user_dataset()
        test = train.with_interactions(np.array([1]), np.array([1]))
        evaluator = Evaluator(train, test, top_n=(100,), metrics=("recall",))

        class Model:
            def all_scores(self, users):
                return np.ones((len(users), 3))

        result = evaluator.evaluate(Model())
        assert 0.0 <= result["recall@100"] <= 1.0

    def test_all_items_excluded_for_user(self):
        # User 0's training set covers the whole catalogue: ranking is
        # empty, recall must be 0 rather than crashing.
        train = dense_user_dataset()
        test = train.with_interactions(np.array([0]), np.array([1]))
        evaluator = Evaluator(train, test, top_n=(2,), metrics=("recall",))

        class Model:
            def all_scores(self, users):
                return np.ones((len(users), 3))

        result = evaluator.evaluate(Model())
        assert result["recall@2"] == 0.0


class TestClusteringEdgeCases:
    def test_single_cluster(self, rng):
        clustering = TagClustering(1, 4, rng=rng)
        q = clustering.soft_assignments(Tensor(rng.normal(size=(5, 4))))
        np.testing.assert_allclose(q.data, 1.0)
        assert clustering.kl_loss(Tensor(rng.normal(size=(5, 4)))).item() == (
            pytest.approx(0.0, abs=1e-9)
        )

    def test_identical_tags_stable(self, rng):
        clustering = TagClustering(3, 4, rng=rng)
        tags = Tensor(np.ones((10, 4)))
        q = clustering.soft_assignments(tags)
        assert np.all(np.isfinite(q.data))


class TestAlignmentEdgeCases:
    def test_single_item_batch(self, small_dataset, small_split, rng):
        backbone = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 16,
            np.random.default_rng(0),
        )
        model = IMCAT(
            backbone, small_dataset, small_split.train,
            IMCATConfig(num_intents=4), rng=np.random.default_rng(0),
        )
        model.refresh_clusters(rng)
        loss = model.alignment_loss(np.array([0]), rng)
        assert np.isfinite(loss.item())

    def test_aggregate_users_empty_batch(self, rng):
        out = aggregate_users(
            np.array([], dtype=int), [np.array([0])],
            Tensor(rng.normal(size=(1, 4))), rng,
        )
        assert out.shape == (0, 4)


class TestNumericalRobustness:
    def test_infonce_with_huge_logits(self):
        q = Tensor(np.full((3, 4), 100.0))
        k = Tensor(np.full((3, 4), 100.0))
        loss = F.info_nce(q, k, temperature=0.01)
        assert np.isfinite(loss.item())

    def test_bpr_with_extreme_scores(self):
        pos = Tensor(np.array([1e8]))
        neg = Tensor(np.array([-1e8]))
        assert np.isfinite(F.bpr_loss(pos, neg).item())

    def test_l2_normalize_tiny_vectors(self):
        out = F.l2_normalize(Tensor(np.full((2, 3), 1e-300)))
        assert np.all(np.isfinite(out.data))

    def test_training_with_zero_weight_components(
        self, small_dataset, small_split, rng
    ):
        """All auxiliary weights zero: IMCAT degrades to plain BPR."""
        backbone = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 16,
            np.random.default_rng(0),
        )
        model = IMCAT(
            backbone, small_dataset, small_split.train,
            IMCATConfig(
                num_intents=4, alpha=0, beta=0, gamma=0,
                independence_weight=0,
            ),
            rng=np.random.default_rng(0),
        )
        from repro.data import ItemTagSampler

        ui = next(BPRSampler(small_split.train, seed=0).epoch(32))
        it = next(ItemTagSampler(small_dataset, seed=0).epoch(32))
        loss = model.training_loss(ui, it, np.arange(8), rng)
        loss.backward()
        # Tag embeddings receive no gradient in this configuration.
        assert model.tag_embedding.weight.grad is None
