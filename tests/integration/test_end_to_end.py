"""Integration tests: full pipelines exercising the whole stack.

These are the "does the paper's story hold end to end" tests: IMCAT on
each backbone must train through both phases and outperform a random
ranker by a wide margin; the tag clustering must correlate with the
synthetic ground-truth factors; and the ISA module must fire on real
cluster assignments.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IMCAT, IMCATConfig, IMCATTrainConfig, IMCATTrainer
from repro.data import SyntheticConfig, generate, split_dataset
from repro.eval import Evaluator
from repro.models import BPRMF, LightGCN, NeuMF


@pytest.fixture(scope="module")
def pipeline_data():
    config = SyntheticConfig(
        "integration", num_users=90, num_items=220, num_tags=60,
        num_factors=4, mean_user_degree=14, mean_item_tags=4,
        user_concentration=0.2,
    )
    dataset, truth = generate(config, seed=3, return_ground_truth=True)
    split = split_dataset(dataset, seed=4)
    return dataset, truth, split


def train_imcat(dataset, split, backbone_name, epochs=20, **config_kw):
    rng = np.random.default_rng(11)
    if backbone_name == "bprmf":
        backbone = BPRMF(dataset.num_users, dataset.num_items, 16, rng)
    elif backbone_name == "neumf":
        backbone = NeuMF(dataset.num_users, dataset.num_items, 16, rng=rng)
    else:
        backbone = LightGCN(
            dataset.num_users, dataset.num_items,
            (split.train.user_ids, split.train.item_ids), 16, rng=rng,
        )
    config = IMCATConfig(
        num_intents=4, pretrain_epochs=4, align_batch_size=64, **config_kw
    )
    model = IMCAT(backbone, dataset, split.train, config, rng=rng)
    trainer = IMCATTrainer(
        model, split,
        IMCATTrainConfig(
            epochs=epochs, batch_size=128, learning_rate=5e-3,
            eval_every=4, patience=6,
        ),
    )
    result = trainer.fit()
    return model, result


class TestFullPipelines:
    @pytest.mark.parametrize("backbone", ["bprmf", "lightgcn"])
    def test_imcat_beats_random_ranker(self, pipeline_data, backbone):
        dataset, _, split = pipeline_data
        model, _ = train_imcat(dataset, split, backbone)
        evaluator = Evaluator(
            split.train, split.test, top_n=(20,), metrics=("recall",)
        )
        trained = evaluator.evaluate(model)["recall@20"]
        # Random ranker recall@20 ~ 20/|V| * coverage; use an actual one.
        class Random:
            def all_scores(self, users):
                return np.random.default_rng(0).normal(
                    size=(len(users), dataset.num_items)
                )

        random_recall = evaluator.evaluate(Random())["recall@20"]
        assert trained > 2.0 * random_recall

    def test_neumf_imcat_runs_both_phases(self, pipeline_data):
        dataset, _, split = pipeline_data
        model, result = train_imcat(dataset, split, "neumf", epochs=8)
        assert model.clustering_active
        assert result.epochs_run == 8

    def test_learned_clusters_correlate_with_ground_truth(self, pipeline_data):
        """Tags of the same latent factor should co-cluster above chance.

        This validates the core IRM hypothesis end to end: the
        self-supervised clustering recovers (noisily) the factor
        structure planted by the generator.
        """
        dataset, truth, split = pipeline_data
        model, _ = train_imcat(dataset, split, "lightgcn", epochs=20)
        clusters = model.tag_clusters
        factors = truth.tag_factors
        # Purity-style score: for each learned cluster take the dominant
        # true factor share, weighted by cluster size.
        total = 0
        agreement = 0
        for c in np.unique(clusters):
            members = factors[clusters == c]
            agreement += np.bincount(members).max()
            total += len(members)
        purity = agreement / total
        chance = 1.0 / len(np.unique(factors))
        assert purity > chance + 0.05

    def test_isa_index_fires_on_trained_clusters(self, pipeline_data):
        dataset, _, split = pipeline_data
        model, _ = train_imcat(dataset, split, "bprmf", epochs=8, delta=0.3)
        assert model.isa_index is not None
        total_pairs = sum(
            model.isa_index.num_similar(k) for k in range(4)
        )
        assert total_pairs > 0

    def test_imcat_improves_its_backbone(self, pipeline_data):
        """The headline claim at miniature scale: adding IMCAT to BPRMF
        does not hurt, and typically helps, relative to plain BPRMF
        under the same budget."""
        from repro.models import TrainConfig, fit_bpr

        dataset, _, split = pipeline_data
        rng = np.random.default_rng(11)
        plain = BPRMF(dataset.num_users, dataset.num_items, 16, rng)
        fit_bpr(
            plain, split,
            TrainConfig(
                epochs=20, batch_size=128, learning_rate=5e-3,
                eval_every=4, patience=6,
            ),
        )
        evaluator = Evaluator(
            split.train, split.test, top_n=(20,), metrics=("recall",)
        )
        plain_recall = evaluator.evaluate(plain)["recall@20"]
        model, _ = train_imcat(dataset, split, "bprmf", epochs=20)
        imcat_recall = evaluator.evaluate(model)["recall@20"]
        # Allow slack for evaluation noise at this scale.
        assert imcat_recall > 0.8 * plain_recall
