"""Shared test utilities: numerical gradient checking and tiny datasets."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data import TagRecDataset


def numerical_gradient(
    func: Callable[[], float], array: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of ``func`` w.r.t. ``array`` in place."""
    grad = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        plus = func()
        array[index] = original - eps
        minus = func()
        array[index] = original
        grad[index] = (plus - minus) / (2.0 * eps)
        iterator.iternext()
    return grad


def assert_gradcheck(
    loss_builder: Callable[[], "object"],
    tensors: list,
    atol: float = 1e-6,
    rtol: float = 1e-4,
) -> None:
    """Check autograd gradients of a scalar loss against finite differences.

    Args:
        loss_builder: zero-argument callable rebuilding the loss tensor
            from the *current* data of ``tensors`` (it is re-invoked for
            every finite-difference probe).
        tensors: tensors with ``requires_grad=True`` to check.
    """
    loss = loss_builder()
    for tensor in tensors:
        tensor.zero_grad()
    loss.backward()
    for tensor in tensors:
        expected = numerical_gradient(lambda: loss_builder().item(), tensor.data)
        actual = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        np.testing.assert_allclose(actual, expected, atol=atol, rtol=rtol)


def tiny_dataset(seed: int = 0) -> TagRecDataset:
    """A deterministic hand-sized dataset for unit tests.

    4 users, 6 items, 5 tags; every index range is exercised, items 0-1
    are popular, item 5 has no tags (edge case for Eq. 8).
    """
    return TagRecDataset(
        num_users=4,
        num_items=6,
        num_tags=5,
        user_ids=np.array([0, 0, 0, 1, 1, 2, 2, 3, 3, 3]),
        item_ids=np.array([0, 1, 2, 0, 1, 0, 3, 1, 4, 5]),
        tag_item_ids=np.array([0, 0, 1, 1, 2, 3, 3, 4]),
        tag_ids=np.array([0, 1, 0, 2, 3, 3, 4, 1]),
        name="tiny",
    )
