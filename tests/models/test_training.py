"""Tests for the shared BPR training loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import Evaluator
from repro.models import BPRMF, TrainConfig, fit_bpr


class TestFitBPR:
    def test_improves_over_untrained(self, small_dataset, small_split):
        evaluator = Evaluator(
            small_split.train, small_split.valid, top_n=(20,), metrics=("recall",)
        )
        untrained = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 16,
            np.random.default_rng(0),
        )
        before = evaluator.evaluate(untrained)["recall@20"]
        model = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 16,
            np.random.default_rng(0),
        )
        result = fit_bpr(
            model, small_split,
            TrainConfig(epochs=30, batch_size=256, eval_every=5, patience=10),
        )
        after = evaluator.evaluate(model)["recall@20"]
        assert after > before
        assert result.best_metric > 0

    def test_early_stopping_halts(self, small_dataset, small_split):
        model = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 8,
            np.random.default_rng(0),
        )
        # Learning rate zero: validation never improves after the first
        # evaluation, so patience=1 must stop well before 100 epochs.
        result = fit_bpr(
            model, small_split,
            TrainConfig(
                epochs=100, batch_size=256, eval_every=1, patience=1,
                learning_rate=1e-12,
            ),
        )
        assert result.epochs_run <= 5

    def test_best_state_restored(self, small_dataset, small_split):
        model = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 8,
            np.random.default_rng(0),
        )
        result = fit_bpr(
            model, small_split,
            TrainConfig(epochs=10, batch_size=256, eval_every=2, patience=2),
        )
        evaluator = Evaluator(
            small_split.train, small_split.valid, top_n=(20,), metrics=("recall",)
        )
        final = evaluator.evaluate(model)["recall@20"]
        assert final == pytest.approx(result.best_metric)

    def test_history_recorded(self, small_dataset, small_split):
        model = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 8,
            np.random.default_rng(0),
        )
        result = fit_bpr(
            model, small_split,
            TrainConfig(epochs=4, batch_size=256, eval_every=2, patience=5),
        )
        assert len(result.history) == 4
        assert all("loss" in record for record in result.history)
        assert any("recall@20" in record for record in result.history)

    def test_wall_time_positive(self, small_dataset, small_split):
        model = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 8,
            np.random.default_rng(0),
        )
        result = fit_bpr(
            model, small_split, TrainConfig(epochs=2, batch_size=256)
        )
        assert result.wall_time > 0

    def test_deterministic_given_seed(self, small_dataset, small_split):
        def run():
            model = BPRMF(
                small_dataset.num_users, small_dataset.num_items, 8,
                np.random.default_rng(3),
            )
            fit_bpr(
                model, small_split,
                TrainConfig(epochs=3, batch_size=256, seed=3),
            )
            return model.user_embedding.weight.data.copy()

        np.testing.assert_allclose(run(), run())


class TestScheduleAndClipping:
    def test_invalid_schedule_rejected(self):
        with pytest.raises(ValueError, match="lr_schedule"):
            TrainConfig(lr_schedule="exponential")

    def test_cosine_schedule_decays_lr(self, small_dataset, small_split):
        model = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 8,
            np.random.default_rng(0),
        )
        # Training must run and remain stable with the schedule on.
        result = fit_bpr(
            model, small_split,
            TrainConfig(epochs=4, batch_size=256, lr_schedule="cosine",
                        eval_every=2, patience=5),
        )
        assert result.epochs_run == 4

    def test_step_schedule_runs(self, small_dataset, small_split):
        model = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 8,
            np.random.default_rng(0),
        )
        result = fit_bpr(
            model, small_split,
            TrainConfig(epochs=4, batch_size=256, lr_schedule="step"),
        )
        assert result.epochs_run == 4

    def test_clipping_bounds_updates(self, small_dataset, small_split):
        model = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 8,
            np.random.default_rng(0),
        )
        result = fit_bpr(
            model, small_split,
            TrainConfig(epochs=2, batch_size=256, clip_norm=0.01),
        )
        assert result.epochs_run == 2
        assert np.all(np.isfinite(model.user_embedding.weight.data))
