"""Tests for the three backbone recommenders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import BPRSampler
from repro.models import BPRMF, LightGCN, NeuMF
from repro.nn import Adam


class TestRecommenderContract:
    @pytest.fixture
    def models(self, small_split, small_dataset, rng):
        interactions = (small_split.train.user_ids, small_split.train.item_ids)
        n_u, n_v = small_dataset.num_users, small_dataset.num_items
        return {
            "bprmf": BPRMF(n_u, n_v, 16, np.random.default_rng(0)),
            "neumf": NeuMF(n_u, n_v, 16, rng=np.random.default_rng(0)),
            "lightgcn": LightGCN(n_u, n_v, interactions, 16,
                                 rng=np.random.default_rng(0)),
        }

    def test_repr_shapes(self, models, small_dataset):
        for model in models.values():
            assert model.user_repr().shape == (small_dataset.num_users, 16)
            assert model.item_repr().shape == (small_dataset.num_items, 16)

    def test_pair_scores_shape(self, models):
        users = np.array([0, 1, 2])
        items = np.array([3, 4, 5])
        for model in models.values():
            model.begin_step()
            assert model.pair_scores(users, items).shape == (3,)

    def test_all_scores_shape_and_no_grad(self, models, small_dataset):
        users = np.array([0, 1])
        for model in models.values():
            scores = model.all_scores(users)
            assert scores.shape == (2, small_dataset.num_items)
            assert isinstance(scores, np.ndarray)

    def test_invalid_embed_dim(self):
        with pytest.raises(ValueError):
            BPRMF(3, 3, 0, np.random.default_rng(0))


class TestBPRMF:
    def test_scores_are_inner_products(self, rng):
        model = BPRMF(4, 5, 8, rng)
        users, items = np.array([1, 2]), np.array([0, 3])
        expected = (
            model.user_embedding.weight.data[users]
            * model.item_embedding.weight.data[items]
        ).sum(axis=1)
        np.testing.assert_allclose(
            model.pair_scores(users, items).data, expected
        )

    def test_bpr_training_step_reduces_loss(self, small_split):
        model = BPRMF(
            small_split.train.num_users, small_split.train.num_items,
            16, np.random.default_rng(0),
        )
        sampler = BPRSampler(small_split.train, seed=0)
        batch = next(sampler.epoch(batch_size=256, shuffle=False))
        optimizer = Adam(model.parameters(), lr=0.05)
        first = model.bpr_loss(batch).item()
        for _ in range(20):
            loss = model.bpr_loss(batch)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert model.bpr_loss(batch).item() < first


class TestNeuMF:
    def test_pairwise_matches_all_scores(self, rng):
        model = NeuMF(5, 7, 8, rng=rng)
        model.eval()
        users = np.array([0, 3])
        all_scores = model.all_scores(users)
        pair = model.pair_scores(np.array([0, 3]), np.array([2, 6])).data
        np.testing.assert_allclose(
            [all_scores[0, 2], all_scores[1, 6]], pair, atol=1e-10
        )

    def test_all_scores_matches_pairwise_everywhere(self, rng):
        model = NeuMF(4, 10, 8, rng=rng)
        dense = model.all_scores(np.arange(4))
        uu = np.repeat(np.arange(4), 10)
        vv = np.tile(np.arange(10), 4)
        pair = model.pair_scores(uu, vv).data.reshape(4, 10)
        np.testing.assert_allclose(dense, pair, atol=1e-12)

    def test_gradients_reach_both_branches(self, rng):
        model = NeuMF(4, 4, 8, rng=rng)
        loss = model.pair_scores(np.array([0]), np.array([1])).sum()
        loss.backward()
        assert model.predict.weight.grad is not None
        assert model.mlp.fc0.weight.grad is not None
        assert model.user_embedding.weight.grad is not None


class TestLightGCN:
    def test_zero_layers_equals_raw_embeddings(self, small_split, small_dataset):
        model = LightGCN(
            small_dataset.num_users, small_dataset.num_items,
            (small_split.train.user_ids, small_split.train.item_ids),
            16, num_layers=0, rng=np.random.default_rng(0),
        )
        np.testing.assert_allclose(
            model.user_repr().data, model.user_embedding.weight.data
        )

    def test_negative_layers_rejected(self, small_split, small_dataset):
        with pytest.raises(ValueError):
            LightGCN(
                small_dataset.num_users, small_dataset.num_items,
                (small_split.train.user_ids, small_split.train.item_ids),
                16, num_layers=-1,
            )

    def test_propagation_changes_representations(self, small_split, small_dataset):
        model = LightGCN(
            small_dataset.num_users, small_dataset.num_items,
            (small_split.train.user_ids, small_split.train.item_ids),
            16, num_layers=2, rng=np.random.default_rng(0),
        )
        assert not np.allclose(
            model.user_repr().data, model.user_embedding.weight.data
        )

    def test_cache_invalidation(self, small_split, small_dataset):
        model = LightGCN(
            small_dataset.num_users, small_dataset.num_items,
            (small_split.train.user_ids, small_split.train.item_ids),
            16, rng=np.random.default_rng(0),
        )
        first = model.user_repr()
        assert model.user_repr() is first  # cached within a step
        model.begin_step()
        assert model.user_repr() is not first

    def test_isolated_node_keeps_self_embedding(self):
        # Item 2 has no interactions: propagation contributes zeros, so
        # the final representation is ego/num_layers+1 of its embedding.
        model = LightGCN(
            2, 3, (np.array([0, 1]), np.array([0, 1])), 8,
            num_layers=2, rng=np.random.default_rng(0),
        )
        final = model.item_repr().data[2]
        expected = model.item_embedding.weight.data[2] / 3.0
        np.testing.assert_allclose(final, expected)

    def test_accepts_prebuilt_matrix(self, small_split, small_dataset):
        from repro.nn import build_interaction_matrix

        matrix = build_interaction_matrix(
            small_split.train.user_ids, small_split.train.item_ids,
            small_dataset.num_users, small_dataset.num_items,
        )
        model = LightGCN(
            small_dataset.num_users, small_dataset.num_items, matrix, 8
        )
        assert model.user_repr().shape[0] == small_dataset.num_users

    def test_gradients_flow_through_propagation(self, small_split, small_dataset):
        model = LightGCN(
            small_dataset.num_users, small_dataset.num_items,
            (small_split.train.user_ids, small_split.train.item_ids),
            8, rng=np.random.default_rng(0),
        )
        loss = model.pair_scores(np.array([0]), np.array([0])).sum()
        loss.backward()
        assert model.user_embedding.weight.grad is not None
        assert model.item_embedding.weight.grad is not None
