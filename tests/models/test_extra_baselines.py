"""Tests for the extra baselines: DGCF and FM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.baselines import DGCF, FM

from ..helpers import assert_gradcheck, tiny_dataset


def make_dgcf(dataset, split, dim=16, k=4, seed=0):
    return DGCF(
        dataset.num_users, dataset.num_items,
        (split.train.user_ids, split.train.item_ids),
        dim, num_intents=k, rng=np.random.default_rng(seed),
    )


class TestDGCF:
    def test_contract_shapes(self, small_dataset, small_split):
        model = make_dgcf(small_dataset, small_split)
        assert model.user_repr().shape == (small_dataset.num_users, 16)
        scores = model.all_scores(np.array([0, 1]))
        assert scores.shape == (2, small_dataset.num_items)

    def test_intent_dim_must_divide(self, small_dataset, small_split):
        with pytest.raises(ValueError, match="divisible"):
            make_dgcf(small_dataset, small_split, dim=16, k=3)

    def test_invalid_layers(self, small_dataset, small_split):
        with pytest.raises(ValueError, match="num_layers"):
            DGCF(
                small_dataset.num_users, small_dataset.num_items,
                (small_split.train.user_ids, small_split.train.item_ids),
                16, num_layers=0,
            )

    def test_routing_refresh_changes_channels(self, small_dataset, small_split):
        model = make_dgcf(small_dataset, small_split)
        before = model._channel_adjs[0].data.copy()
        model.user_embedding.weight.data += 1.0
        model.refresh_epoch(1)
        assert not np.allclose(model._channel_adjs[0].data, before)

    def test_channel_weights_route_edge_mass(self, small_dataset, small_split):
        """Across channels, an edge's routed weights sum to one."""
        model = make_dgcf(small_dataset, small_split)
        # Sum the (u, v) entry over all channel adjacencies pre-normalisation
        # is not directly recoverable post row-normalisation, but every
        # channel matrix must be row-stochastic on non-empty rows.
        for adj in model._channel_adjs:
            sums = np.asarray(adj.sum(axis=1)).ravel()
            nonzero = sums[sums > 1e-12]
            np.testing.assert_allclose(nonzero, 1.0, atol=1e-9)

    def test_gradients_flow(self, small_dataset, small_split):
        model = make_dgcf(small_dataset, small_split)
        model.begin_step()
        loss = model.pair_scores(np.array([0]), np.array([1])).sum()
        loss.backward()
        assert model.user_embedding.weight.grad is not None
        assert model.item_embedding.weight.grad is not None

    def test_extra_loss_finite(self, small_dataset, small_split, rng):
        model = make_dgcf(small_dataset, small_split)
        model.begin_step()
        assert np.isfinite(model.extra_loss(rng).item())


class TestFM:
    def test_all_scores_matches_pair_scores(self):
        tiny = tiny_dataset()
        model = FM(tiny, 8, rng=np.random.default_rng(0))
        dense = model.all_scores(np.arange(tiny.num_users))
        uu = np.repeat(np.arange(tiny.num_users), tiny.num_items)
        vv = np.tile(np.arange(tiny.num_items), tiny.num_users)
        pair = model.pair_scores(uu, vv).data.reshape(
            tiny.num_users, tiny.num_items
        )
        np.testing.assert_allclose(dense, pair, atol=1e-10)

    def test_pairwise_term_matches_naive_fm(self):
        """The factorised score equals the explicit sum over pairs."""
        tiny = tiny_dataset()
        model = FM(tiny, 6, rng=np.random.default_rng(1))
        user, item = 1, 0
        score = model.pair_scores(np.array([user]), np.array([item])).item()
        # Naive FM: features = {user u, item v, tags of v}.
        e_u = model.user_embedding.weight.data[user]
        e_v = model.item_embedding.weight.data[item]
        tags = tiny.tags_of_item()[item]
        features = [e_u, e_v] + [model.tag_embedding.weight.data[t] for t in tags]
        pairwise = 0.0
        for i in range(len(features)):
            for j in range(i + 1, len(features)):
                pairwise += float(features[i] @ features[j])
        biases = (
            model.user_bias.data[user]
            + model.item_bias.data[item]
            + model.tag_bias.data[tags].sum()
        )
        assert score == pytest.approx(pairwise + biases, rel=1e-9)

    def test_item_without_tags(self):
        tiny = tiny_dataset()  # item 5 has no tags
        model = FM(tiny, 6, rng=np.random.default_rng(0))
        score = model.pair_scores(np.array([0]), np.array([5])).item()
        e_u = model.user_embedding.weight.data[0]
        e_v = model.item_embedding.weight.data[5]
        expected = float(e_u @ e_v) + model.user_bias.data[0] + model.item_bias.data[5]
        assert score == pytest.approx(expected, rel=1e-9)

    def test_gradients_reach_all_tables(self):
        tiny = tiny_dataset()
        model = FM(tiny, 6, rng=np.random.default_rng(0))
        loss = model.pair_scores(np.array([0, 1]), np.array([0, 1])).sum()
        loss.backward()
        assert model.user_embedding.weight.grad is not None
        assert model.item_embedding.weight.grad is not None
        assert model.tag_embedding.weight.grad is not None
        assert model.user_bias.grad is not None

    def test_gradcheck(self):
        tiny = tiny_dataset()
        model = FM(tiny, 4, rng=np.random.default_rng(0))
        users = np.array([0, 2])
        items = np.array([1, 3])
        assert_gradcheck(
            lambda: (model.pair_scores(users, items) ** 2).sum(),
            [model.user_embedding.weight, model.item_embedding.weight,
             model.tag_embedding.weight],
        )


class TestRegistryExtras:
    def test_extras_runnable(self, small_dataset, small_split):
        from repro.bench import EXTRAS

        for name in ("DGCF", "FM"):
            trained = EXTRAS[name](
                small_dataset, small_split, 16, seed=0, epochs=2,
                batch_size=128,
            )
            scores = trained.model.all_scores(np.array([0]))
            assert scores.shape == (1, small_dataset.num_items)
