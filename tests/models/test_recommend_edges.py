"""`Model.recommend` edge cases — exactly the inputs a serving layer sees.

A request API cannot control what clients ask for: list lengths beyond
the catalogue, exclusion sets covering everything the model knows, and
users with no history all arrive eventually.  `recommend` must stay
well-defined on each (the serving ladder in :mod:`repro.serve` builds
on these guarantees).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import BPRMF, LightGCN

NUM_USERS, NUM_ITEMS, DIM = 5, 8, 4


@pytest.fixture
def model(rng):
    return BPRMF(NUM_USERS, NUM_ITEMS, DIM, rng=rng)


class TestTopNLargerThanCatalogue:
    def test_returns_whole_catalogue_at_most(self, model):
        items = model.recommend(0, top_n=NUM_ITEMS * 10)
        assert items.size == NUM_ITEMS
        assert sorted(items.tolist()) == list(range(NUM_ITEMS))

    def test_with_exclusions(self, model):
        items = model.recommend(0, top_n=NUM_ITEMS * 10, exclude={0, 3})
        assert items.size == NUM_ITEMS - 2
        assert not {0, 3} & set(items.tolist())

    def test_ordering_is_best_first(self, model):
        scores = model.all_scores(np.array([0]))[0]
        items = model.recommend(0, top_n=NUM_ITEMS)
        ranked_scores = scores[items]
        assert np.all(np.diff(ranked_scores) <= 0)


class TestExcludeEverything:
    def test_full_exclusion_returns_empty(self, model):
        items = model.recommend(1, top_n=3, exclude=set(range(NUM_ITEMS)))
        assert items.size == 0

    def test_near_full_exclusion_returns_remainder(self, model):
        exclude = set(range(NUM_ITEMS)) - {5}
        items = model.recommend(1, top_n=3, exclude=exclude)
        np.testing.assert_array_equal(items, [5])

    def test_excluded_never_recommended_even_when_short(self, model):
        # More requested than remain after exclusion: the list shrinks
        # rather than backfilling with excluded items.
        exclude = set(range(NUM_ITEMS - 2))
        items = model.recommend(2, top_n=NUM_ITEMS, exclude=exclude)
        assert set(items.tolist()) == {NUM_ITEMS - 2, NUM_ITEMS - 1}


class TestEmptyHistoryUser:
    def test_cold_user_gets_full_list(self, rng):
        # A user with no training interactions (nothing to exclude)
        # still receives a well-formed, deduplicated top-N.
        model = LightGCN(
            NUM_USERS,
            NUM_ITEMS,
            (np.array([0, 1, 1]), np.array([2, 3, 4])),  # user 4 unseen
            DIM,
            rng=rng,
        )
        items = model.recommend(4, top_n=3, exclude=set())
        assert items.size == 3
        assert items.size == np.unique(items).size
        assert items.min() >= 0 and items.max() < NUM_ITEMS

    def test_cold_user_scores_are_finite(self, rng):
        model = BPRMF(NUM_USERS, NUM_ITEMS, DIM, rng=rng)
        scores = model.all_scores(np.array([NUM_USERS - 1]))[0]
        assert np.all(np.isfinite(scores))
