"""Tests for the nine baseline methods.

Each baseline gets: construction checks, the Recommender contract
(shapes, scoring), and a learning smoke test showing that a short
training run beats an untrained copy on validation recall.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import Evaluator
from repro.models import TrainConfig, fit_bpr
from repro.models import baselines as B


def interactions(split):
    return (split.train.user_ids, split.train.item_ids)


def build(name, dataset, split, dim=16, seed=0):
    rng = np.random.default_rng(seed)
    ti = interactions(split)
    factories = {
        "cfa": lambda: B.CFA(split.train, dim, rng),
        "dspr": lambda: B.DSPR(split.train, dim, rng),
        "tgcn": lambda: B.TGCN(dataset, ti, dim, rng=rng),
        "cke": lambda: B.CKE(dataset, dim, rng=rng),
        "ripplenet": lambda: B.RippleNet(dataset, ti, dim, rng=rng),
        "kgat": lambda: B.KGAT(dataset, ti, dim, rng=rng),
        "kgin": lambda: B.KGIN(dataset, ti, dim, rng=rng),
        "sgl": lambda: B.SGL(dataset.num_users, dataset.num_items, ti, dim, rng=rng),
        "kgcl": lambda: B.KGCL(dataset, ti, dim, rng=rng),
    }
    return factories[name]()


ALL_BASELINES = ["cfa", "dspr", "tgcn", "cke", "ripplenet", "kgat", "kgin", "sgl", "kgcl"]


class TestContract:
    @pytest.mark.parametrize("name", ALL_BASELINES)
    def test_all_scores_shape(self, name, small_dataset, small_split):
        model = build(name, small_dataset, small_split)
        scores = model.all_scores(np.array([0, 1, 2]))
        assert scores.shape == (3, small_dataset.num_items)
        assert np.all(np.isfinite(scores))

    @pytest.mark.parametrize(
        "name", [n for n in ALL_BASELINES if n != "cfa"]
    )
    def test_pair_scores_differentiable(self, name, small_dataset, small_split):
        model = build(name, small_dataset, small_split)
        model.begin_step()
        users = np.array([0, 1])
        items = np.array([2, 3])
        loss = model.pair_scores(users, items).sum()
        loss.backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert grads, f"{name}: no gradients flowed"

    @pytest.mark.parametrize("name", ["cke", "kgat", "kgin", "sgl", "kgcl"])
    def test_extra_loss_scalar(self, name, small_dataset, small_split, rng):
        model = build(name, small_dataset, small_split)
        model.begin_step()
        extra = model.extra_loss(rng)
        assert extra is not None
        assert extra.size == 1
        assert np.isfinite(extra.item())


class TestLearning:
    @pytest.mark.parametrize(
        "name", [n for n in ALL_BASELINES if n != "cfa"]
    )
    def test_training_reduces_ranking_loss(
        self, name, small_dataset, small_split
    ):
        model = build(name, small_dataset, small_split, seed=0)
        result = fit_bpr(
            model,
            small_split,
            TrainConfig(epochs=10, batch_size=256, eval_every=20, patience=10, seed=0),
        )
        losses = [record["loss"] for record in result.history]
        assert losses[-1] < losses[0]

    @pytest.mark.parametrize("name", ["dspr", "tgcn"])
    def test_training_improves_validation_recall(
        self, name, small_dataset, small_split
    ):
        evaluator = Evaluator(
            small_split.train, small_split.valid, top_n=(20,), metrics=("recall",)
        )
        untrained = build(name, small_dataset, small_split, seed=0)
        before = evaluator.evaluate(untrained)["recall@20"]
        model = build(name, small_dataset, small_split, seed=0)
        fit_bpr(
            model,
            small_split,
            TrainConfig(epochs=15, batch_size=256, eval_every=5, patience=10, seed=0),
        )
        after = evaluator.evaluate(model)["recall@20"]
        assert after >= before


class TestCFA:
    def test_profiles_row_normalised(self, small_dataset, small_split):
        model = build("cfa", small_dataset, small_split)
        sums = model._profiles.sum(axis=1)
        assert np.all(sums <= 1.0 + 1e-9)

    def test_reconstruction_loss_decreases(self, small_dataset, small_split):
        from repro.data import BPRSampler
        from repro.nn import Adam

        model = build("cfa", small_dataset, small_split)
        sampler = BPRSampler(small_split.train, seed=0)
        batch = next(sampler.epoch(batch_size=64, shuffle=False))
        optimizer = Adam(model.parameters(), lr=0.01)
        first = model.bpr_loss(batch).item()
        for _ in range(10):
            loss = model.bpr_loss(batch)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert model.bpr_loss(batch).item() < first

    def test_self_similarity_excluded(self, small_dataset, small_split):
        model = build("cfa", small_dataset, small_split)
        scores = model.all_scores(np.array([0]))
        assert np.all(np.isfinite(scores))


class TestRippleNet:
    def test_ripple_sets_shape(self, small_dataset, small_split):
        model = build("ripplenet", small_dataset, small_split)
        assert model._ripples.shape == (small_dataset.num_users, 16)

    def test_ripples_come_from_user_items(self, small_dataset, small_split):
        model = build("ripplenet", small_dataset, small_split)
        tags_of_item = small_dataset.tags_of_item()
        items_of_user = small_split.train.items_of_user()
        user = next(
            u for u in range(small_dataset.num_users)
            if len(items_of_user[u]) > 0
        )
        pool = set()
        for item in items_of_user[user]:
            pool.update(tags_of_item[item].tolist())
        if pool:
            assert set(model._ripples[user].tolist()) <= pool

    def test_pair_scores_match_all_scores(self, small_dataset, small_split):
        model = build("ripplenet", small_dataset, small_split)
        users = np.array([0, 1])
        items = np.array([2, 5])
        pair = model.pair_scores(users, items).data
        dense = model.all_scores(users, item_chunk=4)
        np.testing.assert_allclose(
            [dense[0, 2], dense[1, 5]], pair, atol=1e-8
        )


class TestSGL:
    def test_views_resampled_each_epoch(self, small_dataset, small_split):
        model = build("sgl", small_dataset, small_split)
        before = model._view_adjs[0][0].nnz
        view0_data = model._view_adjs[0][0].copy()
        model.refresh_epoch(1)
        changed = (model._view_adjs[0][0] != view0_data).nnz > 0
        assert changed or model._view_adjs[0][0].nnz != before

    def test_invalid_drop_ratio(self, small_dataset, small_split):
        with pytest.raises(ValueError):
            B.SGL(
                small_dataset.num_users, small_dataset.num_items,
                interactions(small_split), 16, drop_ratio=1.5,
            )

    def test_invalid_augmentation(self, small_dataset, small_split):
        with pytest.raises(ValueError, match="augmentation"):
            B.SGL(
                small_dataset.num_users, small_dataset.num_items,
                interactions(small_split), 16, augmentation="mixup",
            )

    @pytest.mark.parametrize("augmentation", ["ed", "nd", "rw"])
    def test_all_augmentations_produce_finite_ssl_loss(
        self, augmentation, small_dataset, small_split, rng
    ):
        model = B.SGL(
            small_dataset.num_users, small_dataset.num_items,
            interactions(small_split), 16, augmentation=augmentation,
            rng=np.random.default_rng(0),
        )
        loss = model.extra_loss(rng)
        assert np.isfinite(loss.item())
        loss.backward()
        assert model.user_embedding.weight.grad is not None

    def test_rw_layers_differ(self, small_dataset, small_split):
        model = B.SGL(
            small_dataset.num_users, small_dataset.num_items,
            interactions(small_split), 16, augmentation="rw",
            rng=np.random.default_rng(0),
        )
        layer0, layer1 = model._view_adjs[0][0], model._view_adjs[0][1]
        assert (layer0 != layer1).nnz > 0

    def test_ed_layers_shared(self, small_dataset, small_split):
        model = B.SGL(
            small_dataset.num_users, small_dataset.num_items,
            interactions(small_split), 16, augmentation="ed",
            rng=np.random.default_rng(0),
        )
        assert model._view_adjs[0][0] is model._view_adjs[0][1]


class TestKGCL:
    def test_tag_views_differ(self, small_dataset, small_split):
        model = build("kgcl", small_dataset, small_split)
        assert (model._views[0] != model._views[1]).nnz > 0

    def test_extra_loss_gradient_reaches_tags(self, small_dataset, small_split, rng):
        model = build("kgcl", small_dataset, small_split)
        loss = model.extra_loss(rng)
        loss.backward()
        assert model.tag_embedding.weight.grad is not None


class TestKGIN:
    def test_intent_vectors_shape(self, small_dataset, small_split):
        model = build("kgin", small_dataset, small_split)
        assert model.intent_vectors().shape == (4, 16)

    def test_independence_loss_nonnegative(self, small_dataset, small_split):
        model = build("kgin", small_dataset, small_split)
        assert model.independence_loss().item() >= 0.0


class TestKGAT:
    def test_attention_refresh_changes_adjacency(self, small_dataset, small_split, rng):
        model = build("kgat", small_dataset, small_split)
        before = model._adjacency.data.copy()
        # Move embeddings, refresh: attention weights must change.
        model.user_embedding.weight.data += 1.0
        model.refresh_epoch(1)
        assert not np.allclose(model._adjacency.data, before)

    def test_adjacency_rows_stochastic(self, small_dataset, small_split):
        model = build("kgat", small_dataset, small_split)
        sums = np.asarray(model._adjacency.sum(axis=1)).ravel()
        nonzero = sums[sums > 0]
        np.testing.assert_allclose(nonzero, 1.0, atol=1e-9)


class TestRippleNetHop2:
    def test_hop2_shape(self, small_dataset, small_split):
        model = build("ripplenet", small_dataset, small_split)
        assert model._ripples2.shape == model._ripples.shape

    def test_hop2_items_share_hop1_tags(self, small_dataset, small_split):
        """Every hop-2 item must carry the hop-1 tag it was reached by
        (when that tag labels at least one item)."""
        model = build("ripplenet", small_dataset, small_split)
        tags_of_item = small_dataset.tags_of_item()
        items_of_tag = [set() for _ in range(small_dataset.num_tags)]
        for item, tag in zip(small_dataset.tag_item_ids, small_dataset.tag_ids):
            items_of_tag[tag].add(int(item))
        for user in range(min(small_dataset.num_users, 10)):
            for pos in range(model.ripple_size):
                tag = model._ripples[user, pos]
                item = model._ripples2[user, pos]
                if items_of_tag[tag]:
                    assert item in items_of_tag[tag]

    def test_two_hop_changes_scores(self, small_dataset, small_split):
        """The hop-2 contribution must actually enter the score."""
        model = build("ripplenet", small_dataset, small_split)
        users = np.array([0, 1])
        items = np.array([2, 3])
        baseline = model.pair_scores(users, items).data.copy()
        # Zeroing the hop-2 item embeddings should move the scores for
        # users whose summaries used them.
        model.item_embedding.weight.data[model._ripples2[users].ravel()] = 0.0
        model.begin_step()
        perturbed = model.pair_scores(users, items).data
        assert not np.allclose(baseline, perturbed)
