"""Tests for popularity groups and cold-start subsets (Figs. 7-8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import TagRecDataset
from repro.eval import (
    group_recall_contributions,
    normalize_per_group,
    popularity_groups,
    recall_at_n,
    sparse_user_subset,
)


def make_dataset():
    rng = np.random.default_rng(0)
    n_inter = 300
    # Item popularity strongly skewed toward high ids.
    items = rng.choice(20, size=n_inter, p=np.arange(1, 21) / np.arange(1, 21).sum())
    users = rng.integers(0, 10, size=n_inter)
    return TagRecDataset(
        num_users=10, num_items=20, num_tags=1,
        user_ids=users, item_ids=items,
        tag_item_ids=np.array([0]), tag_ids=np.array([0]),
    )


class TestPopularityGroups:
    def test_partition_covers_all_items(self):
        ds = make_dataset()
        groups = popularity_groups(ds, 5)
        flat = np.concatenate(groups)
        assert sorted(flat.tolist()) == list(range(20))

    def test_groups_ordered_by_popularity(self):
        ds = make_dataset()
        groups = popularity_groups(ds, 5)
        degrees = ds.item_degrees()
        means = [degrees[g].mean() for g in groups]
        assert means == sorted(means)

    def test_equal_sizes(self):
        ds = make_dataset()
        groups = popularity_groups(ds, 5)
        assert all(len(g) == 4 for g in groups)

    def test_invalid_group_count(self):
        with pytest.raises(ValueError):
            popularity_groups(make_dataset(), 0)


class TestGroupContributions:
    def test_contributions_sum_to_overall_recall(self):
        train = make_dataset()
        rng = np.random.default_rng(1)
        test = train.with_interactions(
            np.repeat(np.arange(10), 2), rng.integers(0, 20, size=20)
        )

        class RandomModel:
            def all_scores(self, users):
                r = np.random.default_rng(5)
                return r.normal(size=(len(users), 20))

        groups = popularity_groups(train, 5)
        contributions = group_recall_contributions(
            RandomModel(), train, test, groups, top_n=5
        )
        # Recompute overall recall@5 manually with the same model.
        model = RandomModel()
        scores = model.all_scores(np.arange(10))
        train_items = train.items_of_user()
        test_items = test.items_of_user()
        from repro.eval import rank_items

        recalls = []
        for u in range(10):
            rel = set(test_items[u].tolist())
            if not rel:
                continue
            ranked = rank_items(scores[u], set(train_items[u].tolist()), 5)
            recalls.append(recall_at_n(list(ranked), rel, 5))
        assert contributions.sum() == pytest.approx(np.mean(recalls), rel=1e-9)

    def test_contributions_nonnegative(self):
        train = make_dataset()
        test = train.with_interactions(np.array([0, 1]), np.array([3, 7]))

        class Zeros:
            def all_scores(self, users):
                return np.zeros((len(users), 20))

        groups = popularity_groups(train, 4)
        contributions = group_recall_contributions(Zeros(), train, test, groups)
        assert np.all(contributions >= 0)


class TestSparseUsers:
    def test_threshold_respected(self):
        ds = make_dataset()
        subset = sparse_user_subset(ds, max_interactions=25)
        degrees = ds.user_degrees()
        assert all(degrees[u] < 25 for u in subset)
        others = set(range(10)) - set(subset.tolist())
        assert all(degrees[u] >= 25 for u in others)

    def test_empty_when_all_dense(self):
        ds = make_dataset()
        assert len(sparse_user_subset(ds, max_interactions=1)) == 0


class TestNormalization:
    def test_best_method_is_one(self):
        values = {
            "a": np.array([1.0, 4.0]),
            "b": np.array([2.0, 2.0]),
        }
        normalized = normalize_per_group(values)
        np.testing.assert_allclose(normalized["a"], [0.5, 1.0])
        np.testing.assert_allclose(normalized["b"], [1.0, 0.5])

    def test_zero_column_untouched(self):
        values = {"a": np.array([0.0]), "b": np.array([0.0])}
        normalized = normalize_per_group(values)
        np.testing.assert_allclose(normalized["a"], [0.0])

    def test_empty_input(self):
        assert normalize_per_group({}) == {}
