"""Tests for the paired t-test helper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import TTestResult, paired_t_test


class TestPairedTTest:
    def test_clear_difference_significant(self):
        rng = np.random.default_rng(0)
        base = rng.normal(0.5, 0.05, size=200)
        better = base + 0.1 + rng.normal(0, 0.01, size=200)
        result = paired_t_test(better, base)
        assert result.significant(0.01)
        assert result.mean_difference == pytest.approx(0.1, abs=0.01)
        assert result.statistic > 0

    def test_identical_vectors_not_significant(self):
        values = np.ones(50) * 0.3
        result = paired_t_test(values, values.copy())
        assert result.p_value == 1.0
        assert not result.significant()

    def test_noise_not_significant(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=100)
        b = a + rng.normal(0, 1.0, size=100) * 0.01 - 0.0001
        result = paired_t_test(a, b)
        # Tiny asymmetric shift in huge noise: p should not be extreme.
        assert result.p_value > 1e-6

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal-length"):
            paired_t_test(np.ones(3), np.ones(4))

    def test_too_few_users_rejected(self):
        with pytest.raises(ValueError, match="two users"):
            paired_t_test(np.ones(1), np.ones(1))

    def test_matches_scipy(self):
        from scipy import stats

        rng = np.random.default_rng(2)
        a = rng.normal(size=30)
        b = rng.normal(size=30)
        ours = paired_t_test(a, b)
        ref_stat, ref_p = stats.ttest_rel(a, b)
        assert ours.statistic == pytest.approx(ref_stat)
        assert ours.p_value == pytest.approx(ref_p)
