"""Tests for the tag-recommendation evaluator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import evaluate_tag_ranking, split_tag_assignments

from ..helpers import tiny_dataset


class TestSplitTagAssignments:
    def test_partition_per_item(self):
        tiny = tiny_dataset()
        observed, held_out = split_tag_assignments(tiny, holdout=0.5, seed=0)
        for item in range(tiny.num_items):
            original = set(tiny.tags_of_item()[item].tolist())
            combined = set(observed[item].tolist()) | set(held_out[item].tolist())
            assert combined == original
            assert not set(observed[item]) & set(held_out[item])

    def test_single_tag_items_keep_observed(self):
        tiny = tiny_dataset()
        observed, held_out = split_tag_assignments(tiny, holdout=0.5, seed=0)
        tags_of_item = tiny.tags_of_item()
        for item in range(tiny.num_items):
            if len(tags_of_item[item]) == 1:
                assert len(observed[item]) == 1
                assert len(held_out[item]) == 0

    def test_every_item_keeps_one_observed(self):
        tiny = tiny_dataset()
        observed, _ = split_tag_assignments(tiny, holdout=0.9, seed=0)
        for item, tags in enumerate(tiny.tags_of_item()):
            if len(tags):
                assert len(observed[item]) >= 1

    def test_invalid_holdout(self):
        with pytest.raises(ValueError):
            split_tag_assignments(tiny_dataset(), holdout=1.0)


class TestEvaluateTagRanking:
    def test_oracle_embeddings_score_high(self):
        """Item embeddings equal to the mean of their held-out tags rank
        those tags first."""
        tiny = tiny_dataset()
        rng = np.random.default_rng(0)
        tag_emb = rng.normal(size=(tiny.num_tags, 8)) * 3
        observed, held_out = split_tag_assignments(tiny, holdout=0.5, seed=0)
        item_emb = np.zeros((tiny.num_items, 8))
        for item, relevant in enumerate(held_out):
            if len(relevant):
                item_emb[item] = tag_emb[relevant].mean(axis=0)
        result = evaluate_tag_ranking(
            item_emb, tag_emb, observed, held_out, top_n=3
        )
        assert result.recall > 0.8
        assert result.num_items > 0

    def test_no_evaluable_items(self):
        tiny = tiny_dataset()
        observed = tiny.tags_of_item()
        held_out = [np.empty(0, dtype=int) for _ in range(tiny.num_items)]
        result = evaluate_tag_ranking(
            np.zeros((6, 4)), np.zeros((5, 4)), observed, held_out
        )
        assert result.num_items == 0
        assert result.recall == 0.0

    def test_observed_tags_masked(self):
        """Observed tags must not appear in the ranking even when they
        score highest."""
        tag_emb = np.array([[10.0], [1.0]])
        item_emb = np.array([[1.0]])
        observed = [np.array([0])]
        held_out = [np.array([1])]
        result = evaluate_tag_ranking(
            item_emb, tag_emb, observed, held_out, top_n=1
        )
        assert result.recall == pytest.approx(1.0)
