"""Unit + property tests for ranking metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    average_precision_at_n,
    hit_rate_at_n,
    ndcg_at_n,
    precision_at_n,
    rank_items,
    recall_at_n,
)


class TestRecall:
    def test_perfect_recall(self):
        assert recall_at_n([1, 2, 3], {1, 2, 3}, 3) == 1.0

    def test_partial_recall(self):
        assert recall_at_n([1, 9, 8], {1, 2}, 3) == 0.5

    def test_empty_relevant_is_zero(self):
        assert recall_at_n([1, 2], set(), 2) == 0.0

    def test_cutoff_applies(self):
        assert recall_at_n([9, 9, 1], {1}, 2) == 0.0


class TestPrecision:
    def test_basic(self):
        assert precision_at_n([1, 9], {1}, 2) == 0.5

    def test_zero_n(self):
        assert precision_at_n([1], {1}, 0) == 0.0


class TestHitRate:
    def test_hit(self):
        assert hit_rate_at_n([5, 1], {1}, 2) == 1.0

    def test_miss(self):
        assert hit_rate_at_n([5, 9], {1}, 2) == 0.0


class TestNDCG:
    def test_perfect_ranking_is_one(self):
        assert ndcg_at_n([1, 2, 3], {1, 2, 3}, 3) == pytest.approx(1.0)

    def test_ideal_truncation(self):
        # 5 relevant items but N=2: placing 2 hits on top is ideal.
        assert ndcg_at_n([1, 2], {1, 2, 3, 4, 5}, 2) == pytest.approx(1.0)

    def test_position_matters(self):
        early = ndcg_at_n([1, 9, 8], {1}, 3)
        late = ndcg_at_n([9, 8, 1], {1}, 3)
        assert early > late

    def test_hand_computed_example(self):
        # Hits at ranks 1 and 3 (0-indexed 0 and 2), 2 relevant items.
        dcg = 1.0 / np.log2(2) + 1.0 / np.log2(4)
        idcg = 1.0 / np.log2(2) + 1.0 / np.log2(3)
        assert ndcg_at_n([1, 9, 2], {1, 2}, 3) == pytest.approx(dcg / idcg)

    def test_empty_relevant(self):
        assert ndcg_at_n([1], set(), 1) == 0.0


class TestMAP:
    def test_single_hit_at_top(self):
        assert average_precision_at_n([1, 9], {1}, 2) == pytest.approx(1.0)

    def test_hand_computed(self):
        # Hits at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
        expected = (1.0 + 2.0 / 3.0) / 2.0
        assert average_precision_at_n([1, 9, 2], {1, 2}, 3) == pytest.approx(expected)


@st.composite
def ranking_case(draw):
    n_items = draw(st.integers(5, 30))
    ranked = draw(st.permutations(list(range(n_items))))
    relevant = set(
        draw(st.lists(st.integers(0, n_items - 1), min_size=1, max_size=5))
    )
    n = draw(st.integers(1, n_items))
    return list(ranked), relevant, n


class TestMetricProperties:
    @given(ranking_case())
    @settings(max_examples=60, deadline=None)
    def test_metrics_bounded(self, case):
        ranked, relevant, n = case
        for metric in (recall_at_n, precision_at_n, ndcg_at_n,
                       hit_rate_at_n, average_precision_at_n):
            value = metric(ranked, relevant, n)
            assert 0.0 <= value <= 1.0

    @given(ranking_case())
    @settings(max_examples=60, deadline=None)
    def test_recall_monotone_in_n(self, case):
        ranked, relevant, n = case
        assert recall_at_n(ranked, relevant, n) <= recall_at_n(
            ranked, relevant, n + 5
        )

    @given(ranking_case())
    @settings(max_examples=60, deadline=None)
    def test_hit_rate_dominates_recall(self, case):
        ranked, relevant, n = case
        assert hit_rate_at_n(ranked, relevant, n) >= recall_at_n(
            ranked, relevant, n
        )


class TestRankItems:
    def test_orders_by_score_descending(self):
        scores = np.array([0.1, 0.9, 0.5])
        np.testing.assert_array_equal(rank_items(scores, set(), 3), [1, 2, 0])

    def test_excludes_training_items(self):
        scores = np.array([0.9, 0.8, 0.1])
        ranked = rank_items(scores, {0}, 2)
        assert 0 not in ranked
        assert ranked[0] == 1

    def test_top_n_capped_at_catalogue(self):
        ranked = rank_items(np.array([1.0, 2.0]), set(), 10)
        assert len(ranked) == 2

    def test_input_not_mutated(self):
        scores = np.array([1.0, 2.0])
        rank_items(scores, {1}, 1)
        np.testing.assert_array_equal(scores, [1.0, 2.0])

    @given(st.integers(1, 20))
    @settings(max_examples=20, deadline=None)
    def test_returns_sorted_topk(self, k):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=30)
        ranked = rank_items(scores, set(), k)
        # Scores along the ranking are non-increasing.
        assert np.all(np.diff(scores[ranked]) <= 1e-12)
        # And they are the global top-k.
        expected = set(np.argsort(scores)[-k:].tolist())
        assert set(ranked.tolist()) == expected
