"""Tests for beyond-accuracy metrics."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.eval import (
    catalogue_coverage,
    evaluate_diversity,
    intra_list_diversity,
    novelty,
    tag_entropy,
)

from ..helpers import tiny_dataset


class TestCoverage:
    def test_full_coverage(self):
        lists = [np.array([0, 1]), np.array([2, 3])]
        assert catalogue_coverage(lists, 4) == 1.0

    def test_partial_coverage(self):
        lists = [np.array([0]), np.array([0])]
        assert catalogue_coverage(lists, 4) == 0.25

    def test_invalid_universe(self):
        with pytest.raises(ValueError):
            catalogue_coverage([], 0)


class TestILD:
    def _tags(self):
        # item 0 and 1 share tags; item 2 disjoint.
        return sp.csr_matrix(
            np.array([[1, 1, 0], [1, 1, 0], [0, 0, 1]], dtype=float)
        )

    def test_identical_items_zero_diversity(self):
        assert intra_list_diversity(np.array([0, 1]), self._tags()) == (
            pytest.approx(0.0)
        )

    def test_disjoint_items_max_diversity(self):
        assert intra_list_diversity(np.array([0, 2]), self._tags()) == (
            pytest.approx(1.0)
        )

    def test_single_item_zero(self):
        assert intra_list_diversity(np.array([0]), self._tags()) == 0.0

    def test_untagged_item_counts_as_dissimilar(self):
        tags = sp.csr_matrix(np.array([[1, 0], [0, 0]], dtype=float))
        assert intra_list_diversity(np.array([0, 1]), tags) == pytest.approx(1.0)

    def test_bounded(self):
        rng = np.random.default_rng(0)
        tags = sp.random(20, 10, density=0.3, random_state=1, format="csr")
        value = intra_list_diversity(np.arange(20), tags)
        assert 0.0 <= value <= 1.0 + 1e-9


class TestNovelty:
    def test_rare_items_more_novel(self):
        popularity = np.array([100, 1])
        assert novelty(np.array([1]), popularity) > novelty(
            np.array([0]), popularity
        )

    def test_unseen_item_finite(self):
        popularity = np.array([10, 0])
        assert np.isfinite(novelty(np.array([1]), popularity))

    def test_empty_popularity(self):
        assert novelty(np.array([0]), np.zeros(3)) == 0.0


class TestTagEntropy:
    def test_single_tag_zero_entropy(self):
        tags = sp.csr_matrix(np.array([[1.0], [1.0]]))
        assert tag_entropy(np.array([0, 1]), tags) == pytest.approx(0.0)

    def test_uniform_tags_log2k(self):
        tags = sp.csr_matrix(np.eye(4))
        assert tag_entropy(np.arange(4), tags) == pytest.approx(2.0)

    def test_untagged_list_zero(self):
        tags = sp.csr_matrix((2, 3))
        assert tag_entropy(np.array([0, 1]), tags) == 0.0


class TestEvaluateDiversity:
    def test_end_to_end_report(self):
        tiny = tiny_dataset()
        test = tiny.with_interactions(np.array([0, 1]), np.array([4, 5]))

        class Model:
            def all_scores(self, users):
                rng = np.random.default_rng(0)
                return rng.normal(size=(len(users), 6))

        report = evaluate_diversity(Model(), tiny, test, top_n=3)
        row = report.as_row()
        assert set(row) == {"coverage", "ILD", "novelty", "tag_entropy"}
        assert 0.0 < report.coverage <= 1.0
        assert report.novelty > 0

    def test_no_eval_users(self):
        tiny = tiny_dataset()
        empty = tiny.with_interactions(
            np.empty(0, dtype=int), np.empty(0, dtype=int)
        )

        class Model:
            def all_scores(self, users):
                return np.zeros((len(users), 6))

        report = evaluate_diversity(Model(), tiny, empty)
        assert report.coverage == 0.0
