"""Seed-swept invariant tests for the ranking metrics.

Rather than pinning hand-computed values (``tests/eval/test_metrics.py``
does that), these tests assert properties that must hold for *any*
ranking and relevance set: range bounds, invariance to permuting the
unranked tail, monotone improvement when a relevant item is promoted to
rank 1, and the empty-ground-truth edge cases.  Each property is swept
over many random seeds so a regression that only bites for particular
hit patterns still fails.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.metrics import (
    METRIC_FUNCTIONS,
    average_precision_at_n,
    hit_rate_at_n,
    ndcg_at_n,
    precision_at_n,
    rank_items,
    recall_at_n,
)

SEEDS = list(range(25))
NUM_ITEMS = 60
TOP_N = 10


def _random_case(seed: int):
    """One random (ranked list, relevant set) pair."""
    rng = np.random.default_rng(seed)
    ranked = rng.permutation(NUM_ITEMS).tolist()
    num_relevant = int(rng.integers(1, 15))
    relevant = set(
        rng.choice(NUM_ITEMS, size=num_relevant, replace=False).tolist()
    )
    return rng, ranked, relevant


class TestRangeBounds:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", sorted(METRIC_FUNCTIONS))
    def test_metric_in_unit_interval(self, name, seed):
        _, ranked, relevant = _random_case(seed)
        value = METRIC_FUNCTIONS[name](ranked, relevant, TOP_N)
        assert 0.0 <= value <= 1.0, f"{name} left [0, 1]: {value}"

    @pytest.mark.parametrize("name", sorted(METRIC_FUNCTIONS))
    def test_perfect_ranking_scores_one(self, name):
        """Relevant items stacked at the top give the maximum value
        (except precision, which is |relevant|/n when there are fewer
        relevant items than slots)."""
        relevant = {0, 1, 2, 3}
        ranked = list(range(NUM_ITEMS))
        value = METRIC_FUNCTIONS[name](ranked, relevant, TOP_N)
        if name == "precision":
            assert value == pytest.approx(len(relevant) / TOP_N)
        else:
            assert value == pytest.approx(1.0)

    @pytest.mark.parametrize("name", sorted(METRIC_FUNCTIONS))
    def test_no_hits_scores_zero(self, name):
        ranked = list(range(TOP_N))
        relevant = {NUM_ITEMS + 5, NUM_ITEMS + 6}
        assert METRIC_FUNCTIONS[name](ranked, relevant, TOP_N) == 0.0


class TestTailPermutationInvariance:
    """Items below rank ``n`` must not influence any @n metric."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", sorted(METRIC_FUNCTIONS))
    def test_shuffling_tail_changes_nothing(self, name, seed):
        rng, ranked, relevant = _random_case(seed)
        baseline = METRIC_FUNCTIONS[name](ranked, relevant, TOP_N)
        head, tail = ranked[:TOP_N], ranked[TOP_N:]
        for _ in range(3):
            shuffled = head + rng.permutation(tail).tolist()
            assert METRIC_FUNCTIONS[name](
                shuffled, relevant, TOP_N
            ) == pytest.approx(baseline)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", sorted(METRIC_FUNCTIONS))
    def test_truncating_tail_changes_nothing(self, name, seed):
        _, ranked, relevant = _random_case(seed)
        baseline = METRIC_FUNCTIONS[name](ranked, relevant, TOP_N)
        assert METRIC_FUNCTIONS[name](
            ranked[:TOP_N], relevant, TOP_N
        ) == pytest.approx(baseline)


class TestPromotionMonotonicity:
    """Moving a relevant item from outside the top-``n`` to rank 1 must
    never decrease a metric (and must strictly increase the rank-aware
    ones)."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", sorted(METRIC_FUNCTIONS))
    def test_promote_unranked_relevant_item(self, name, seed):
        rng, ranked, relevant = _random_case(seed)
        outside = [item for item in ranked[TOP_N:] if item in relevant]
        if not outside:
            # Force one relevant item outside the head.
            victim = int(rng.choice(sorted(relevant)))
            ranked.remove(victim)
            ranked.append(victim)
            outside = [victim]
        promoted = outside[0]
        before = METRIC_FUNCTIONS[name](ranked, relevant, TOP_N)
        reranked = [promoted] + [item for item in ranked if item != promoted]
        after = METRIC_FUNCTIONS[name](reranked, relevant, TOP_N)
        assert after >= before - 1e-12
        if name in ("recall", "precision"):
            # One more hit in the window unless the window was full of
            # hits already (then the displaced item may also be a hit).
            displaced = ranked[TOP_N - 1]
            if displaced not in relevant:
                assert after > before
        if name in ("ndcg", "map"):
            displaced = ranked[TOP_N - 1]
            if displaced not in relevant:
                assert after > before

    @pytest.mark.parametrize("seed", SEEDS)
    def test_swapping_hit_upward_never_hurts_ndcg(self, seed):
        """NDCG is rank-discounted: moving a hit one slot up past a miss
        strictly increases it."""
        _, ranked, relevant = _random_case(seed)
        head = ranked[:TOP_N]
        for position in range(1, TOP_N):
            if head[position] in relevant and head[position - 1] not in relevant:
                before = ndcg_at_n(ranked, relevant, TOP_N)
                swapped = list(ranked)
                swapped[position - 1], swapped[position] = (
                    swapped[position], swapped[position - 1]
                )
                after = ndcg_at_n(swapped, relevant, TOP_N)
                assert after > before
                return
        pytest.skip("no miss-above-hit adjacency in this draw")


class TestEdgeCases:
    @pytest.mark.parametrize("name", sorted(METRIC_FUNCTIONS))
    def test_empty_ground_truth_is_zero(self, name):
        """No relevant items: every metric degrades to 0.0, never NaN
        or a ZeroDivisionError."""
        value = METRIC_FUNCTIONS[name](list(range(20)), set(), TOP_N)
        assert value == 0.0

    @pytest.mark.parametrize("name", sorted(METRIC_FUNCTIONS))
    def test_empty_ranking(self, name):
        assert METRIC_FUNCTIONS[name]([], {1, 2, 3}, TOP_N) == 0.0

    def test_precision_zero_window(self):
        assert precision_at_n([1, 2, 3], {1}, 0) == 0.0

    def test_single_relevant_single_slot(self):
        assert recall_at_n([7], {7}, 1) == 1.0
        assert ndcg_at_n([7], {7}, 1) == pytest.approx(1.0)
        assert hit_rate_at_n([7], {7}, 1) == 1.0
        assert average_precision_at_n([7], {7}, 1) == pytest.approx(1.0)

    @pytest.mark.parametrize("seed", SEEDS[:10])
    def test_relevant_larger_than_window_keeps_bounds(self, seed):
        """More relevant items than ranking slots: still within [0, 1]
        and a fully-relevant window maxes the rank-aware metrics."""
        rng = np.random.default_rng(seed)
        relevant = set(range(NUM_ITEMS))
        ranked = rng.permutation(NUM_ITEMS).tolist()
        for name, func in METRIC_FUNCTIONS.items():
            value = func(ranked, relevant, TOP_N)
            assert 0.0 <= value <= 1.0
            if name != "recall":
                assert value == pytest.approx(1.0), name


class TestRankItems:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_exclusions_never_recommended(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=NUM_ITEMS)
        exclude = set(
            rng.choice(NUM_ITEMS, size=NUM_ITEMS // 3, replace=False).tolist()
        )
        ranked = rank_items(scores, exclude, TOP_N)
        assert not (set(ranked.tolist()) & exclude)
        assert len(ranked) == min(TOP_N, NUM_ITEMS - len(exclude))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_returns_true_top_scores_in_order(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=NUM_ITEMS)
        ranked = rank_items(scores, set(), TOP_N)
        expected = np.argsort(scores)[::-1][:TOP_N]
        assert ranked.tolist() == expected.tolist()

    def test_everything_excluded(self):
        scores = np.arange(5, dtype=float)
        ranked = rank_items(scores, set(range(5)), 3)
        assert ranked.size == 0
