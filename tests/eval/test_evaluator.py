"""Tests for the full-ranking evaluator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import TagRecDataset
from repro.eval import Evaluator


class PerfectModel:
    """Scores the user's test items highest (oracle)."""

    def __init__(self, test: TagRecDataset, num_items: int):
        self._test_items = test.items_of_user()
        self._num_items = num_items

    def all_scores(self, users):
        scores = np.zeros((len(users), self._num_items))
        for row, user in enumerate(users):
            scores[row, self._test_items[user]] = 10.0
        return scores


class ConstantModel:
    def __init__(self, num_items: int):
        self._num_items = num_items

    def all_scores(self, users):
        # Item 0 always best, then 1, 2, ...
        return -np.tile(np.arange(self._num_items, dtype=float), (len(users), 1))


def make_pair():
    train = TagRecDataset(
        num_users=3, num_items=8, num_tags=1,
        user_ids=np.array([0, 0, 1, 2]), item_ids=np.array([0, 1, 0, 2]),
        tag_item_ids=np.array([0]), tag_ids=np.array([0]),
    )
    test = train.with_interactions(
        np.array([0, 1, 1]), np.array([2, 3, 4])
    )
    return train, test


class TestEvaluator:
    def test_unknown_metric_rejected(self):
        train, test = make_pair()
        with pytest.raises(ValueError, match="unknown metrics"):
            Evaluator(train, test, metrics=("bogus",))

    def test_oracle_gets_perfect_recall(self):
        train, test = make_pair()
        evaluator = Evaluator(train, test, top_n=(5,), metrics=("recall", "ndcg"))
        result = evaluator.evaluate(PerfectModel(test, 8))
        assert result["recall@5"] == pytest.approx(1.0)
        assert result["ndcg@5"] == pytest.approx(1.0)

    def test_users_without_test_items_skipped(self):
        train, test = make_pair()
        evaluator = Evaluator(train, test)
        assert 2 not in evaluator.eval_users  # user 2 has no test items

    def test_training_items_masked(self):
        train, test = make_pair()
        # ConstantModel ranks item 0 first, but item 0 is in train for
        # users 0 and 1, so it must not appear in their rankings.
        evaluator = Evaluator(train, test, top_n=(1,), metrics=("recall",))
        result = evaluator.evaluate(ConstantModel(8))
        # user 0: top unmasked item is 2 (its test item!) -> hit.
        # user 1: top unmasked is 1 -> miss (test items 3, 4).
        per_user = result.per_user["recall@1"]
        assert per_user[0] == pytest.approx(1.0)
        assert per_user[1] == pytest.approx(0.0)

    def test_user_subset_restriction(self):
        train, test = make_pair()
        evaluator = Evaluator(train, test, user_subset=[1])
        np.testing.assert_array_equal(evaluator.eval_users, [1])

    def test_chunked_evaluation_matches_single(self):
        train, test = make_pair()
        evaluator = Evaluator(train, test, top_n=(3,))
        model = PerfectModel(test, 8)
        a = evaluator.evaluate(model, chunk_size=1).metrics
        b = evaluator.evaluate(model, chunk_size=100).metrics
        assert a == b

    def test_bad_score_shape_detected(self):
        train, test = make_pair()
        evaluator = Evaluator(train, test)

        class Broken:
            def all_scores(self, users):
                return np.zeros((1, 8))

        with pytest.raises(ValueError, match="rows"):
            evaluator.evaluate(Broken(), chunk_size=2)

    def test_multiple_cutoffs(self):
        train, test = make_pair()
        evaluator = Evaluator(train, test, top_n=(1, 5), metrics=("recall",))
        result = evaluator.evaluate(PerfectModel(test, 8))
        assert result["recall@5"] >= result["recall@1"]

    def test_summary_format(self):
        train, test = make_pair()
        result = Evaluator(train, test).evaluate(PerfectModel(test, 8))
        assert "recall@20=" in result.summary()


class RandomModel:
    """Continuous random scores — no ties, exercises arbitrary rankings."""

    def __init__(self, num_items: int, seed: int):
        self._num_items = num_items
        self._rng = np.random.default_rng(seed)
        self._scores = None

    def all_scores(self, users):
        if self._scores is None:
            # One fixed table so repeated evaluations see the same scores.
            self._scores = self._rng.normal(size=(1000, self._num_items))
        return self._scores[users]


def random_pair(seed, num_users=30, num_items=40):
    """A random train/test interaction pair with edge cases baked in."""
    rng = np.random.default_rng(seed)
    users, items = [], []
    for u in range(num_users):
        degree = int(rng.integers(0, 8))
        for i in rng.choice(num_items, size=degree, replace=False):
            users.append(u)
            items.append(int(i))
    train = TagRecDataset(
        num_users=num_users, num_items=num_items, num_tags=1,
        user_ids=np.array(users, dtype=np.int64),
        item_ids=np.array(items, dtype=np.int64),
        tag_item_ids=np.array([0]), tag_ids=np.array([0]),
    )
    t_users, t_items = [], []
    for u in range(num_users):
        if rng.random() < 0.2:
            continue  # some users have no test items at all
        degree = int(rng.integers(1, 5))
        for i in rng.choice(num_items, size=degree, replace=False):
            t_users.append(u)
            t_items.append(int(i))
    test = train.with_interactions(
        np.array(t_users, dtype=np.int64), np.array(t_items, dtype=np.int64)
    )
    return train, test


class TestFastMatchesReference:
    """The vectorized path must reproduce the per-user loop exactly."""

    ALL_METRICS = ("recall", "ndcg", "precision", "hit_rate", "map")

    def assert_equivalent(self, evaluator, model, chunk_size=256):
        fast = evaluator.evaluate(model, chunk_size=chunk_size)
        ref = evaluator.evaluate_reference(model, chunk_size=chunk_size)
        assert set(fast.per_user) == set(ref.per_user)
        np.testing.assert_array_equal(fast.user_ids, ref.user_ids)
        for key in ref.per_user:
            np.testing.assert_allclose(
                fast.per_user[key], ref.per_user[key], atol=1e-9,
                err_msg=f"per-user {key} diverges",
            )

    @pytest.mark.parametrize("seed", range(5))
    def test_random_models_all_metrics(self, seed):
        train, test = random_pair(seed)
        evaluator = Evaluator(
            train, test, top_n=(1, 5, 20), metrics=self.ALL_METRICS
        )
        self.assert_equivalent(evaluator, RandomModel(40, seed + 100))

    @pytest.mark.parametrize("chunk_size", [1, 3, 7, 1000])
    def test_every_chunk_size(self, chunk_size):
        train, test = random_pair(7)
        evaluator = Evaluator(train, test, top_n=(10,), metrics=self.ALL_METRICS)
        self.assert_equivalent(
            evaluator, RandomModel(40, 1), chunk_size=chunk_size
        )

    def test_cutoff_beyond_item_count(self):
        # max_n > |V| exercises the k-clipping in both paths.
        train, test = random_pair(3, num_items=15)
        evaluator = Evaluator(train, test, top_n=(50,), metrics=("recall", "ndcg"))
        self.assert_equivalent(evaluator, RandomModel(15, 2))

    def test_heavy_train_mask(self):
        # Users whose training set leaves fewer than max_n candidates.
        train, test = make_pair()
        evaluator = Evaluator(train, test, top_n=(8,), metrics=self.ALL_METRICS)
        self.assert_equivalent(evaluator, RandomModel(8, 3))

    def test_tied_scores_rank_identically(self):
        # ConstantModel produces distinct scores; an all-equal scorer is
        # the worst tie case — both paths must break ties the same way.
        train, test = random_pair(11)

        class Ties:
            def all_scores(self, users):
                return np.zeros((len(users), 40))

        evaluator = Evaluator(train, test, top_n=(5, 20), metrics=self.ALL_METRICS)
        self.assert_equivalent(evaluator, Ties())

    def test_fast_does_not_mutate_model_scores(self):
        train, test = make_pair()
        model = RandomModel(8, 5)
        model.all_scores(np.arange(3))  # materialise the cached table
        before = model._scores.copy()
        Evaluator(train, test, top_n=(5,)).evaluate(model)
        np.testing.assert_array_equal(model._scores, before)

    def test_perf_registry_records_phases(self):
        from repro.perf import StopwatchRegistry

        train, test = make_pair()
        perf = StopwatchRegistry()
        Evaluator(train, test).evaluate(PerfectModel(test, 8), perf=perf)
        assert perf.count("score") > 0
        assert perf.count("rank") > 0
        assert perf.count("metrics") > 0


class TestAllMetrics:
    def test_five_metrics_computed(self):
        train, test = make_pair()
        evaluator = Evaluator(
            train, test, top_n=(5,),
            metrics=("recall", "ndcg", "precision", "hit_rate", "map"),
        )
        result = evaluator.evaluate(PerfectModel(test, 8))
        assert set(result.metrics) == {
            "recall@5", "ndcg@5", "precision@5", "hit_rate@5", "map@5",
        }
        # Oracle: recall, ndcg, hit rate and MAP are all perfect.
        assert result["recall@5"] == pytest.approx(1.0)
        assert result["hit_rate@5"] == pytest.approx(1.0)
        assert result["map@5"] == pytest.approx(1.0)
