"""MetricsRegistry: instruments, CounterRegistry compatibility, threads."""

from __future__ import annotations

import threading

import pytest

from repro.obs import MetricsRegistry, exponential_buckets
from repro.perf import CounterRegistry, StopwatchRegistry


class TestExponentialBuckets:
    def test_default_ladder(self):
        bounds = exponential_buckets()
        assert len(bounds) == 14
        assert bounds[0] == pytest.approx(0.001)
        assert bounds[-1] == pytest.approx(0.001 * 2**13)
        assert bounds == sorted(bounds)

    @pytest.mark.parametrize(
        "kwargs", [{"start": 0}, {"factor": 1.0}, {"count": 0}]
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            exponential_buckets(**kwargs)


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        c = registry.counter("steps")
        c.inc()
        c.inc(4)
        assert registry.counter("steps").value == 5
        assert registry.counter("steps") is c

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_set_and_inc(self):
        registry = MetricsRegistry()
        g = registry.gauge("loss")
        g.set(0.5)
        g.inc(0.25)
        assert g.value == pytest.approx(0.75)
        assert g.updates == 2
        assert registry.gauges() == {"loss": pytest.approx(0.75)}


class TestHistogram:
    def test_cumulative_buckets(self):
        registry = MetricsRegistry()
        h = registry.histogram("latency", buckets=[0.1, 1.0, 10.0])
        for value in (0.05, 0.5, 5.0, 50.0):
            h.observe(value)
        assert h.bucket_counts() == [1, 2, 3]
        assert h.count == 4
        assert h.sum == pytest.approx(55.55)
        assert h.mean == pytest.approx(55.55 / 4)

    def test_quantile_from_bounds(self):
        registry = MetricsRegistry()
        h = registry.histogram("q", buckets=[1.0, 2.0, 4.0])
        for value in [0.5] * 50 + [1.5] * 40 + [3.0] * 10:
            h.observe(value)
        assert h.quantile(0.5) == pytest.approx(1.0)
        assert h.quantile(0.9) == pytest.approx(2.0)
        assert h.quantile(1.0) == pytest.approx(4.0)

    def test_quantile_above_ladder_is_inf(self):
        h = MetricsRegistry().histogram("h", buckets=[1.0])
        h.observe(100.0)
        assert h.quantile(0.9) == float("inf")

    def test_quantile_empty_and_bad_q(self):
        h = MetricsRegistry().histogram("h")
        assert h.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestCounterRegistryCompatibility:
    """MetricsRegistry must be usable anywhere CounterRegistry is."""

    def test_add_get_counts(self):
        registry = MetricsRegistry()
        registry.add("hits")
        registry.add("hits", 2)
        registry.add("misses")
        assert registry.get("hits") == 3
        assert registry.get("absent") == 0
        assert registry.counts() == {"hits": 3, "misses": 1}

    def test_as_dict_sorted(self):
        registry = MetricsRegistry()
        registry.add("zebra")
        registry.add("aard")
        assert list(registry.as_dict()) == ["aard", "zebra"]

    def test_rate(self):
        registry = MetricsRegistry()
        registry.add("events", 10)
        assert registry.rate("events", 2.0) == pytest.approx(5.0)
        assert registry.rate("events", 0.0) == 0.0

    def test_merge_from_perf_counters(self):
        perf = CounterRegistry()
        perf.add("shared", 2)
        registry = MetricsRegistry()
        registry.add("shared", 1)
        registry.merge(perf)
        assert registry.get("shared") == 3

    def test_same_public_surface_as_counter_registry(self):
        for method in ("add", "get", "counts", "rate", "as_dict",
                       "merge", "reset"):
            assert callable(getattr(MetricsRegistry(), method)), method

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.add("c")
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(0.1)
        registry.reset()
        assert registry.counts() == {}
        assert registry.gauges() == {}
        assert registry.histograms() == {}


class TestSnapshotAndAbsorb:
    def test_snapshot_is_json_safe_and_sorted(self):
        import json

        registry = MetricsRegistry()
        registry.add("b.counter")
        registry.add("a.counter")
        registry.gauge("loss").set(0.25)
        registry.histogram("lat", buckets=[1.0]).observe(0.5)
        snap = registry.snapshot()
        json.dumps(snap)
        assert list(snap["counters"]) == ["a.counter", "b.counter"]
        assert snap["gauges"]["loss"] == 0.25
        assert snap["histograms"]["lat"]["count"] == 1

    def test_absorb_perf_registries(self):
        counters = CounterRegistry()
        counters.add("steps", 7)
        timers = StopwatchRegistry()
        timers.record("epoch", 0.2)
        timers.record("epoch", 0.4)
        registry = MetricsRegistry()
        registry.absorb_perf(counters=counters, timers=timers)
        assert registry.get("steps") == 7
        hist = registry.histograms()["perf.epoch"]
        assert hist.count == 2
        assert hist.sum == pytest.approx(0.6)


class TestThreadSafety:
    def test_concurrent_mixed_instruments(self):
        registry = MetricsRegistry()
        threads_n, rounds = 8, 1_000
        barrier = threading.Barrier(threads_n)

        def worker(index):
            barrier.wait()
            for step in range(rounds):
                registry.add("shared")
                registry.counter(f"own.{index}").inc()
                registry.gauge("gauge").set(step)
                registry.histogram("hist").observe(0.01)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.get("shared") == threads_n * rounds
        for index in range(threads_n):
            assert registry.counter(f"own.{index}").value == rounds
        assert registry.histograms()["hist"].count == threads_n * rounds
