"""Golden-trace regression: the span structure of a 2-epoch IMCAT run.

Pins the *shape* of the trace a traced training run produces — span
names, nesting, and counts via :func:`repro.obs.span_structure` — not
durations or attributes.  A training-loop refactor that silently drops
a phase (loses the KL term, stops refreshing clusters, skips eval)
changes this signature; a slower machine does not.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IMCAT, IMCATConfig, IMCATTrainConfig, IMCATTrainer
from repro.data.sampling import BPRSampler
from repro.models import BPRMF
from repro.obs import Tracer, span_structure, validate_trace

BATCH_SIZE = 4096
CHUNK_SIZE = 256  # the evaluator default


def _count_batches(split) -> int:
    sampler = BPRSampler(split.train, seed=0)
    return sum(1 for _ in sampler.epoch(BATCH_SIZE))


def _leaf(name):
    return (name, 1, [])


def _eval_children(n_chunks: int) -> list:
    per_chunk = [
        _leaf("eval:score"), _leaf("eval:rank"), _leaf("metric:recall@20"),
    ]
    return per_chunk * n_chunks


def _epoch_children(n_batches, n_chunks, forward, refresh_at=None) -> list:
    children = []
    for batch in range(n_batches):
        children += [_leaf("sampling"), ("forward", 1, forward),
                     _leaf("backward")]
        if refresh_at == batch:
            children.append(_leaf("cluster-refresh"))
    children.append(_leaf("sampling"))  # the exhausted final draw
    children.append(("eval", 1, _eval_children(n_chunks)))
    return children


@pytest.fixture(scope="module")
def golden_run(small_dataset, small_split):
    """One traced 2-epoch IMCAT fit (pretrain epoch + clustering epoch)."""
    n_batches = _count_batches(small_split)
    rng = np.random.default_rng(0)
    backbone = BPRMF(small_dataset.num_users, small_dataset.num_items, 16, rng)
    config = IMCATConfig(
        num_intents=4,
        align_batch_size=32,
        pretrain_epochs=1,
        # Fire exactly once, on the last step of the clustering epoch.
        cluster_refresh_every=2 * n_batches,
    )
    model = IMCAT(backbone, small_dataset, small_split.train, config, rng=rng)
    tracer = Tracer()
    trainer = IMCATTrainer(
        model,
        small_split,
        IMCATTrainConfig(
            epochs=2, batch_size=BATCH_SIZE, eval_every=1, patience=10
        ),
        tracer=tracer,
    )
    trainer.fit()
    return tracer, n_batches


class TestGoldenTrace:
    def test_trace_validates(self, golden_run):
        tracer, _ = golden_run
        assert validate_trace(tracer.records()) is None

    def test_span_structure_matches_golden(self, golden_run, small_split):
        tracer, n_batches = golden_run
        records = tracer.records()
        # Chunk count is a property of the data size, not the trace:
        # the evaluator ranks validation users in chunks of 256.
        valid_users = sum(
            1 for items in small_split.valid.items_of_user() if len(items)
        )
        n_chunks = -(-valid_users // CHUNK_SIZE)
        assert n_chunks >= 1

        forward_pretrain = [
            _leaf("loss:bpr"), _leaf("loss:tag"), _leaf("loss:align"),
            _leaf("loss:independence"),
        ]
        forward_clustering = [
            _leaf("loss:bpr"), _leaf("loss:tag"), _leaf("loss:align"),
            _leaf("loss:kl"), _leaf("loss:independence"),
        ]
        golden = [
            ("train", 1, [
                # Fresh-start ISA index build for the degenerate
                # single-cluster phase.
                ("cluster-refresh", 1, []),
                ("epoch", 1, _epoch_children(
                    n_batches, n_chunks, forward_pretrain
                )),
                ("activate-clustering", 1, []),
                ("epoch", 1, _epoch_children(
                    n_batches, n_chunks, forward_clustering,
                    refresh_at=n_batches - 1,
                )),
            ]),
        ]
        assert span_structure(records) == golden

    def test_attributes_present_on_key_spans(self, golden_run):
        tracer, _ = golden_run
        records = tracer.records()
        train = next(r for r in records if r["name"] == "train")
        assert train["attributes"]["method"] == "IMCAT"
        assert train["attributes"]["backbone"] == "BPRMF"
        assert train["attributes"]["epochs_run"] == 2
        epochs = [r for r in records if r["name"] == "epoch"]
        assert [e["attributes"]["index"] for e in epochs] == [0, 1]
        assert [e["attributes"]["clustering"] for e in epochs] == [
            False, True,
        ]
        for epoch in epochs:
            assert "loss" in epoch["attributes"]
        refresh = next(r for r in records if r["name"] == "cluster-refresh")
        assert 0.0 <= refresh["attributes"]["drift"] <= 1.0

    def test_rerun_is_structurally_identical(
        self, golden_run, small_dataset, small_split
    ):
        """Same seed, same data: the signature is deterministic."""
        tracer, n_batches = golden_run
        rng = np.random.default_rng(0)
        backbone = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 16, rng
        )
        config = IMCATConfig(
            num_intents=4, align_batch_size=32, pretrain_epochs=1,
            cluster_refresh_every=2 * n_batches,
        )
        model = IMCAT(
            backbone, small_dataset, small_split.train, config, rng=rng
        )
        second = Tracer()
        IMCATTrainer(
            model, small_split,
            IMCATTrainConfig(
                epochs=2, batch_size=BATCH_SIZE, eval_every=1, patience=10
            ),
            tracer=second,
        ).fit()
        assert span_structure(second.records()) == span_structure(
            tracer.records()
        )


class TestDataParallelTrace:
    """Span structure of the data-parallel epoch path.

    The fork backend's parent-side trace is fully deterministic: worker
    compute happens in forked children (their spans die with them), so
    each epoch collapses to the orchestration spans ``dp:fork`` /
    ``dp:steps`` / ``dp:adopt`` plus the parent-side eval.
    """

    def _fit_traced(self, small_dataset, small_split, backend):
        rng = np.random.default_rng(0)
        backbone = BPRMF(
            small_dataset.num_users, small_dataset.num_items, 16, rng
        )
        config = IMCATConfig(
            num_intents=4, align_batch_size=32, pretrain_epochs=1,
        )
        model = IMCAT(
            backbone, small_dataset, small_split.train, config, rng=rng
        )
        tracer = Tracer()
        IMCATTrainer(
            model, small_split,
            IMCATTrainConfig(
                epochs=2, batch_size=BATCH_SIZE, eval_every=1, patience=10,
                dp_workers=1, dp_backend=backend,
            ),
            tracer=tracer,
        ).fit()
        return tracer

    def test_fork_structure_matches_golden(self, small_dataset, small_split):
        tracer = self._fit_traced(small_dataset, small_split, "fork")
        assert validate_trace(tracer.records()) is None
        valid_users = sum(
            1 for items in small_split.valid.items_of_user() if len(items)
        )
        n_chunks = -(-valid_users // CHUNK_SIZE)
        dp_epoch = [
            _leaf("dp:fork"), _leaf("dp:steps"), _leaf("dp:adopt"),
            ("eval", 1, _eval_children(n_chunks)),
        ]
        golden = [
            ("train", 1, [
                ("cluster-refresh", 1, []),
                ("epoch", 1, dp_epoch),
                ("activate-clustering", 1, []),
                ("epoch", 1, dp_epoch),
            ]),
        ]
        assert span_structure(tracer.records()) == golden

    def test_inline_steps_nest_worker_spans(self, small_dataset, small_split):
        # The inline backend runs compute in-process, so the per-loss
        # spans re-appear, nested under ``dp:steps``.
        tracer = self._fit_traced(small_dataset, small_split, "inline")
        assert validate_trace(tracer.records()) is None

        def names(nodes):
            out = []
            for name, _, children in nodes:
                out.append(name)
                out.extend(names(children))
            return out

        structure = span_structure(tracer.records())
        epochs = [
            node for node in structure[0][2] if node[0] == "epoch"
        ]
        assert len(epochs) == 2
        for name, _, children in epochs:
            steps = [node for node in children if node[0] == "dp:steps"]
            assert len(steps) == 1
            assert "loss:bpr" in names(steps[0][2])
        # The clustering epoch computes the KL term inside the workers.
        assert "loss:kl" in names(epochs[1][2])
        assert "dp:fork" not in names(structure)
