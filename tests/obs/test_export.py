"""Exporters: Prometheus round-trip, JSONL traces, validation."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    parse_prometheus,
    read_trace,
    sanitize_metric_name,
    to_prometheus,
    validate_trace,
    write_metrics,
    write_metrics_jsonl,
)


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.add("serve.requests", 12)
    registry.gauge("trainer.loss").set(0.625)
    hist = registry.histogram("serve.request_seconds", buckets=[0.01, 0.1, 1.0])
    for value in (0.005, 0.05, 0.5, 5.0):
        hist.observe(value)
    return registry


class TestSanitize:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("serve.request_seconds", "serve_request_seconds"),
            ("epoch/eval", "epoch_eval"),
            ("already_fine", "already_fine"),
            ("9starts_with_digit", "_9starts_with_digit"),
        ],
    )
    def test_names(self, raw, expected):
        assert sanitize_metric_name(raw) == expected


class TestPrometheusRoundTrip:
    def test_full_round_trip(self):
        text = to_prometheus(_populated_registry())
        families = parse_prometheus(text)
        counter = families["repro_serve_requests_total"]
        assert counter["type"] == "counter"
        assert counter["samples"]["repro_serve_requests_total{}"] == 12.0

        gauge = families["repro_trainer_loss"]
        assert gauge["type"] == "gauge"
        assert gauge["samples"]["repro_trainer_loss{}"] == pytest.approx(0.625)

        hist = families["repro_serve_request_seconds"]
        assert hist["type"] == "histogram"
        samples = hist["samples"]
        assert samples['repro_serve_request_seconds_bucket{le="0.01"}'] == 1.0
        assert samples['repro_serve_request_seconds_bucket{le="0.1"}'] == 2.0
        assert samples['repro_serve_request_seconds_bucket{le="1"}'] == 3.0
        assert samples['repro_serve_request_seconds_bucket{le="+Inf"}'] == 4.0
        assert samples["repro_serve_request_seconds_count{}"] == 4.0
        assert samples["repro_serve_request_seconds_sum{}"] == pytest.approx(
            5.555
        )

    def test_buckets_are_cumulative_and_monotone(self):
        text = to_prometheus(_populated_registry())
        families = parse_prometheus(text)
        samples = families["repro_serve_request_seconds"]["samples"]
        bucket_values = [
            value for key, value in samples.items() if "_bucket{" in key
        ]
        assert bucket_values == sorted(bucket_values)

    def test_empty_prefix(self):
        registry = MetricsRegistry()
        registry.add("steps")
        families = parse_prometheus(to_prometheus(registry, prefix=""))
        assert "steps_total" in families

    def test_write_metrics_file(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_metrics(_populated_registry(), str(path))
        families = parse_prometheus(path.read_text())
        assert "repro_trainer_loss" in families

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus("this is { not a metric\n")

    def test_parser_rejects_bad_type_line(self):
        with pytest.raises(ValueError, match="malformed TYPE"):
            parse_prometheus("# TYPE broken\n")

    def test_parser_rejects_empty_export(self):
        with pytest.raises(ValueError, match="no metric samples"):
            parse_prometheus("# HELP nothing here\n")

    def test_parser_rejects_bad_value(self):
        with pytest.raises(ValueError, match="bad sample value"):
            parse_prometheus("metric_a notanumber\n")


class TestJsonlMetrics:
    def test_snapshot_appends_lines(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        registry = _populated_registry()
        write_metrics_jsonl(registry, str(path))
        registry.add("serve.requests")
        write_metrics_jsonl(registry, str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["counters"]["serve.requests"] == 12
        assert second["counters"]["serve.requests"] == 13


class TestTraceFiles:
    def _write_trace(self, tmp_path):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(str(path))
        return path

    def test_read_trace(self, tmp_path):
        records = read_trace(str(self._write_trace(tmp_path)))
        assert [r["name"] for r in records] == ["root", "child"]
        assert validate_trace(records) is None

    def test_read_trace_rejects_non_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            read_trace(str(path))

    def test_read_trace_rejects_non_span(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"foo": 1}\n')
        with pytest.raises(ValueError, match="not a span record"):
            read_trace(str(path))

    def test_validate_duplicate_ids(self):
        records = [
            {"span_id": 1, "parent_id": None, "name": "a"},
            {"span_id": 1, "parent_id": None, "name": "b"},
        ]
        assert "duplicate" in validate_trace(records)

    def test_validate_unknown_parent(self):
        records = [{"span_id": 2, "parent_id": 99, "name": "orphan"}]
        assert "unknown parent" in validate_trace(records)
