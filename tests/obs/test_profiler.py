"""Sampling profiler: samples land, lifecycle is safe, formats render."""

from __future__ import annotations

import time

import pytest

from repro.obs import SamplingProfiler, profile


def _busy_loop(seconds: float) -> int:
    total = 0
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


class TestSamplingProfiler:
    def test_collects_samples_from_busy_thread(self):
        with SamplingProfiler(interval=0.002) as prof:
            _busy_loop(0.15)
        assert prof.samples >= 5
        top = prof.top(5)
        assert top and top[0][1] >= 1
        # The busy loop must dominate the leaf table.
        leaves = [leaf for leaf, _ in top]
        assert any("_busy_loop" in leaf for leaf in leaves)

    def test_collapsed_stacks_are_flamegraph_shaped(self):
        with SamplingProfiler(interval=0.002) as prof:
            _busy_loop(0.1)
        collapsed = prof.collapsed()
        assert collapsed
        for stack, count in collapsed.items():
            assert count >= 1
            assert ";" in stack or ":" in stack  # module:func frames

    def test_as_dict_is_consistent(self):
        with SamplingProfiler(interval=0.002) as prof:
            _busy_loop(0.05)
        payload = prof.as_dict()
        assert payload["samples"] == sum(payload["stacks"].values())
        assert payload["samples"] == sum(payload["leaves"].values())

    def test_format_top_renders(self):
        with SamplingProfiler(interval=0.002) as prof:
            _busy_loop(0.05)
        text = prof.format_top(3)
        assert "sampling profile" in text
        assert "%" in text

    def test_format_top_empty(self):
        prof = SamplingProfiler()
        assert "no samples" in prof.format_top()

    def test_double_start_rejected(self):
        prof = SamplingProfiler(interval=0.01).start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                prof.start()
        finally:
            prof.stop()

    def test_stop_is_idempotent(self):
        prof = SamplingProfiler(interval=0.01).start()
        prof.stop()
        prof.stop()

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)

    def test_profile_helper_returns_unstarted(self):
        prof = profile(interval=0.01)
        assert isinstance(prof, SamplingProfiler)
        assert prof.samples == 0
