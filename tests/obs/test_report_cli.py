"""Report rendering and the ``python -m repro.obs report`` CLI."""

from __future__ import annotations

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    format_metrics_table,
    render_tree,
    to_prometheus,
    trace_summary,
)
from repro.obs.__main__ import main as obs_main


def _training_like_trace() -> Tracer:
    tracer = Tracer()
    with tracer.span("train", method="IMCAT"):
        for epoch in range(2):
            with tracer.span("epoch", index=epoch) as span:
                with tracer.span("forward"):
                    pass
                with tracer.span("backward"):
                    pass
                span.set_attribute("loss", 0.5 - 0.1 * epoch)
        with tracer.span("eval", metric="recall@20"):
            pass
    return tracer


class TestRenderTree:
    def test_collapses_sibling_runs_with_counts(self):
        text = render_tree(_training_like_trace().records())
        assert "train" in text
        assert "epoch ×2" in text
        # Children of the merged epochs fold together too.
        assert "forward ×2" in text
        assert "backward ×2" in text
        assert text.count("eval") == 1

    def test_shows_allowlisted_attributes(self):
        text = render_tree(_training_like_trace().records())
        assert "loss=0.4" in text  # last epoch's loss wins
        assert "metric=recall@20" in text

    def test_depth_limit(self):
        records = _training_like_trace().records()
        shallow = render_tree(records, max_depth=1)
        assert "train" in shallow
        assert "epoch" not in shallow

    def test_empty_trace(self):
        assert render_tree([]) == "(empty trace)"

    def test_summary_counts(self):
        summary = trace_summary(_training_like_trace().records())
        assert summary["spans"] == 8
        assert summary["roots"] == 1
        assert summary["root_names"] == ["train"]
        assert summary["total_wall"] > 0.0


class TestFormatMetricsTable:
    def test_all_sections(self):
        registry = MetricsRegistry()
        registry.add("steps", 3)
        registry.gauge("loss").set(0.125)
        registry.histogram("lat", buckets=[1.0]).observe(0.5)
        text = format_metrics_table(registry.snapshot())
        assert "counters:" in text and "steps" in text
        assert "gauges:" in text and "0.125" in text
        assert "histograms:" in text and "count=1" in text

    def test_empty(self):
        assert format_metrics_table({}) == "(no metrics)"


class TestReportCli:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _training_like_trace().export_jsonl(str(path))
        return str(path)

    def test_report_renders_tree(self, trace_file, capsys):
        assert obs_main(["report", trace_file]) == 0
        out = capsys.readouterr().out
        assert "8 spans" in out
        assert "epoch ×2" in out

    def test_report_with_metrics_file(self, trace_file, tmp_path, capsys):
        registry = MetricsRegistry()
        registry.add("requests", 5)
        registry.gauge("loss").set(0.5)
        metrics_path = tmp_path / "metrics.prom"
        metrics_path.write_text(to_prometheus(registry))
        assert obs_main(
            ["report", trace_file, "--metrics", str(metrics_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "2 families" in out
        assert "repro_requests_total" in out

    def test_report_depth_flag(self, trace_file, capsys):
        assert obs_main(["report", trace_file, "--depth", "1"]) == 0
        out = capsys.readouterr().out
        assert "epoch" not in out.split("\n\n", 1)[1]

    def test_missing_trace_fails(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert obs_main(["report", missing]) == 1
        assert "cannot read trace" in capsys.readouterr().err

    def test_invalid_trace_fails(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"span_id": 1, "parent_id": 99, "name": "orphan"}\n'
        )
        assert obs_main(["report", str(path)]) == 1
        assert "invalid trace" in capsys.readouterr().err

    def test_bad_metrics_file_fails(self, trace_file, tmp_path, capsys):
        metrics_path = tmp_path / "garbage.prom"
        metrics_path.write_text("{{{ nope\n")
        assert obs_main(
            ["report", trace_file, "--metrics", str(metrics_path)]
        ) == 1
        assert "cannot parse metrics" in capsys.readouterr().err
