"""Tracer and TraceSpan: tree structure, timing, disabled path."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs import NOOP_SPAN, Tracer, span_structure
from repro.obs.spans import iter_children


class TestTracerBasics:
    def test_single_span_records(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            span.set_attribute("key", 1)
        spans = tracer.spans()
        assert len(spans) == 1
        assert spans[0].name == "work"
        assert spans[0].parent_id is None
        assert spans[0].attributes == {"key": 1}

    def test_nesting_sets_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with tracer.span("inner2") as inner2:
                assert inner2.parent_id == outer.span_id
        records = tracer.records()
        names = [r["name"] for r in records]
        assert names == ["outer", "inner", "inner2"]

    def test_span_ids_unique_and_increasing(self):
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("s"):
                pass
        ids = [s.span_id for s in tracer.spans()]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_wall_and_cpu_time_recorded(self):
        tracer = Tracer()
        with tracer.span("sleep"):
            time.sleep(0.02)
        span = tracer.spans()[0]
        assert span.wall >= 0.015
        # Sleeping burns almost no CPU.
        assert 0.0 <= span.cpu < span.wall

    def test_open_span_reports_zero_duration(self):
        tracer = Tracer()
        span = tracer.span("open")
        assert span.wall == 0.0 and span.cpu == 0.0
        span.__exit__(None, None, None)
        assert span.wall > 0.0

    def test_attributes_at_open_and_mid_scope(self):
        tracer = Tracer()
        with tracer.span("s", a=1) as span:
            span.set_attributes(b=2, c=3)
        assert tracer.spans()[0].attributes == {"a": 1, "b": 2, "c": 3}

    def test_current_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
        assert tracer.current() is None

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("fails"):
                raise RuntimeError("boom")
        assert len(tracer) == 1
        assert tracer.spans()[0].wall >= 0.0

    def test_leaked_child_does_not_corrupt_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.span("leaked")  # never closed by the caller
        # Closing outer force-pops the leaked child; the next root span
        # must have no parent.
        with tracer.span("root2") as root2:
            assert root2.parent_id is None

    def test_reset_clears_and_restarts_ids(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert len(tracer) == 0
        with tracer.span("b") as span:
            assert span.span_id == 1


class TestDisabledPath:
    def test_disabled_returns_shared_noop(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", attr=1)
        assert span is NOOP_SPAN
        with span as inner:
            inner.set_attribute("x", 1)
            inner.set_attributes(y=2)
        assert len(tracer) == 0

    def test_enable_mid_run(self):
        tracer = Tracer(enabled=False)
        with tracer.span("dropped"):
            pass
        tracer.enabled = True
        with tracer.span("kept"):
            pass
        assert [s.name for s in tracer.spans()] == ["kept"]


class TestThreading:
    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        errors = []

        def worker(index):
            try:
                with tracer.span(f"thread{index}") as span:
                    assert span.parent_id is None
                    with tracer.span("child") as child:
                        assert child.parent_id == span.span_id
            except AssertionError as err:  # pragma: no cover
                errors.append(err)

        with tracer.span("main-root"):
            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        roots = [s for s in tracer.spans() if s.parent_id is None]
        # 4 thread roots + the main root; the workers never nested under
        # the main thread's open span.
        assert len(roots) == 5


class TestExportAndStructure:
    def test_export_jsonl_round_trips(self, tmp_path):
        tracer = Tracer()
        with tracer.span("root", run=7):
            with tracer.span("leaf"):
                pass
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(str(path))
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert [r["name"] for r in records] == ["root", "leaf"]
        assert records[0]["attributes"] == {"run": 7}
        assert records[1]["parent_id"] == records[0]["span_id"]

    def test_iter_children_orders_by_id(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            for name in ("a", "b", "c"):
                with tracer.span(name):
                    pass
        records = tracer.records()
        children = list(iter_children(records, root.span_id))
        assert [c["name"] for c in children] == ["a", "b", "c"]

    def test_span_structure_merges_consecutive_siblings(self):
        tracer = Tracer()
        with tracer.span("train"):
            for _ in range(3):
                with tracer.span("epoch"):
                    with tracer.span("step"):
                        pass
            with tracer.span("eval"):
                pass
        structure = span_structure(tracer.records())
        assert structure == [
            ("train", 1, [
                ("epoch", 3, [("step", 1, [])]),
                ("eval", 1, []),
            ]),
        ]

    def test_span_structure_distinguishes_different_children(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("phase"):
                with tracer.span("a"):
                    pass
            with tracer.span("phase"):
                with tracer.span("b"):
                    pass
        structure = span_structure(tracer.records())
        # Same name but different child shapes: runs do not merge.
        assert structure == [
            ("root", 1, [
                ("phase", 1, [("a", 1, [])]),
                ("phase", 1, [("b", 1, [])]),
            ]),
        ]
