"""Crash-safe export: atomic writes, torn-tail healing, no tmp litter.

Every obs exporter lands through :func:`repro.obs.atomic_write_text`
(temp file + fsync + rename), so a process SIGKILL'd mid-export — the
exact chaos the process-pool suite inflicts — can never leave a torn
metrics or trace file behind.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    atomic_write_text,
    parse_prometheus,
    read_trace,
    write_metrics,
    write_metrics_jsonl,
)


def tmp_litter(directory):
    return [name for name in os.listdir(directory) if name.endswith(".tmp")]


class TestAtomicWriteText:
    def test_writes_content_and_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(str(path), "hello\n")
        assert path.read_text(encoding="utf-8") == "hello\n"
        assert tmp_litter(str(tmp_path)) == []

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(str(path), "first complete export\n")
        atomic_write_text(str(path), "second complete export\n")
        assert path.read_text(encoding="utf-8") == "second complete export\n"
        assert tmp_litter(str(tmp_path)) == []

    def test_failed_write_preserves_the_original(self, tmp_path, monkeypatch):
        path = tmp_path / "out.txt"
        atomic_write_text(str(path), "the good export\n")

        def exploding_replace(src, dst):
            raise OSError("simulated crash at the rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(str(path), "the torn export\n")
        monkeypatch.undo()
        # Original intact, temp file cleaned up.
        assert path.read_text(encoding="utf-8") == "the good export\n"
        assert tmp_litter(str(tmp_path)) == []

    def test_missing_target_directory_raises_without_litter(self, tmp_path):
        with pytest.raises(OSError):
            atomic_write_text(str(tmp_path / "nope" / "out.txt"), "x")
        assert tmp_litter(str(tmp_path)) == []


class TestExportersAreAtomic:
    def test_write_metrics_leaves_no_litter(self, tmp_path):
        registry = MetricsRegistry()
        registry.add("serve.supervisor.restarts", 3)
        path = tmp_path / "metrics.prom"
        write_metrics(registry, str(path))
        parsed = parse_prometheus(path.read_text(encoding="utf-8"))
        assert "repro_serve_supervisor_restarts_total" in parsed
        assert tmp_litter(str(tmp_path)) == []

    def test_trace_export_leaves_no_litter(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("request"):
            with tracer.span("score"):
                pass
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(str(path))
        records = read_trace(str(path))
        assert [r["name"] for r in records] == ["request", "score"]
        assert tmp_litter(str(tmp_path)) == []


class TestJsonlHealing:
    def test_append_keeps_prior_snapshots(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        registry = MetricsRegistry()
        registry.add("requests", 1)
        write_metrics_jsonl(registry, str(path))
        registry.add("requests", 1)
        write_metrics_jsonl(registry, str(path))
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        counts = [json.loads(line)["counters"]["requests"] for line in lines]
        assert counts == [1, 2]

    def test_torn_trailing_line_is_healed_on_next_append(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        registry = MetricsRegistry()
        registry.add("requests", 5)
        write_metrics_jsonl(registry, str(path))
        # Simulate an unclean writer that died mid-append.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"counters": {"requests": 6')
        write_metrics_jsonl(registry, str(path))
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2  # torn tail dropped, not resurrected
        for line in lines:
            json.loads(line)  # every surviving line parses

    def test_blank_lines_are_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text('{"counters": {}}\n\n\n', encoding="utf-8")
        registry = MetricsRegistry()
        write_metrics_jsonl(registry, str(path))
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        assert tmp_litter(str(tmp_path)) == []
