"""Process-global tracer/metrics accessors and their fallback logic."""

from __future__ import annotations

import pytest

import repro
from repro import obs


@pytest.fixture(autouse=True)
def _restore_globals():
    """Leave the process-global tracer/metrics as the suite found them."""
    tracer = obs.get_tracer()
    metrics = obs.get_metrics()
    enabled = tracer.enabled
    yield
    obs.set_tracer(tracer)
    obs.set_metrics(metrics)
    tracer.enabled = enabled


class TestGlobalTracer:
    def test_disabled_by_default(self):
        assert obs.get_tracer().enabled is False

    def test_enable_disable_round_trip(self):
        tracer = obs.enable_tracing()
        assert tracer is obs.get_tracer()
        assert tracer.enabled is True
        assert obs.disable_tracing().enabled is False

    def test_enable_mutates_existing_object(self):
        """Components resolve the tracer at construction time, so
        enabling must flip the already-shared object, not swap it."""
        held = obs.resolve_tracer(None)
        obs.enable_tracing()
        assert held.enabled is True

    def test_set_tracer_swaps_and_returns_previous(self):
        replacement = obs.Tracer()
        previous = obs.set_tracer(replacement)
        assert obs.get_tracer() is replacement
        assert obs.set_tracer(previous) is replacement

    def test_resolve_prefers_explicit(self):
        explicit = obs.Tracer()
        assert obs.resolve_tracer(explicit) is explicit
        assert obs.resolve_tracer(None) is obs.get_tracer()


class TestGlobalMetrics:
    def test_always_live(self):
        obs.get_metrics().gauge("test.globals.gauge").set(1.5)
        assert obs.get_metrics().gauges()["test.globals.gauge"] == 1.5

    def test_set_metrics_swaps(self):
        replacement = obs.MetricsRegistry()
        previous = obs.set_metrics(replacement)
        assert obs.get_metrics() is replacement
        obs.set_metrics(previous)


class TestPackageRegistration:
    def test_obs_exported_from_repro(self):
        assert repro.obs is obs
        assert "obs" in repro.__all__
