"""LNT006 clean twin: every write happens under the declared guard."""

from repro.concurrency import new_lock, shared_state


@shared_state(guard="_lock")
class Counter:
    def __init__(self):
        self._lock = new_lock("fixture.Counter")
        self.value = 0

    def bump(self):
        with self._lock:
            self.value = self.value + 1

    def read(self):
        with self._lock:
            return self.value
