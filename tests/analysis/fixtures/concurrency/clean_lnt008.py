"""LNT008 clean twin: the sleep happens outside the critical section."""

import threading
import time

LOCK = threading.Lock()


def throttled_flush():
    time.sleep(0.1)
    with LOCK:
        pass
