"""LNT010 clean twin: the lazy check and assignment sit under the lock."""

from repro.concurrency import new_lock, shared_state


@shared_state(guard="_lock")
class TableHolder:
    def __init__(self):
        self._lock = new_lock("fixture.TableHolder")
        self._table = None

    def table(self):
        with self._lock:
            if self._table is None:
                self._table = self._build()
            return self._table

    def _build(self):
        return {"ready": True}
