"""LNT007 clean twin: both call sites take the locks in one order."""

import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()

state_a = {}
state_b = {}


def move_a_to_b(key):
    with LOCK_A:
        with LOCK_B:
            state_b[key] = state_a.pop(key, None)


def move_b_to_a(key):
    with LOCK_A:
        with LOCK_B:
            state_a[key] = state_b.pop(key, None)
