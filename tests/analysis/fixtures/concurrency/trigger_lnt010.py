"""LNT010 trigger: unlocked lazy initialization of a shared attribute."""

from repro.concurrency import new_lock, shared_state


@shared_state(guard="_lock")
class TableHolder:
    def __init__(self):
        self._lock = new_lock("fixture.TableHolder")
        self._table = None

    def table(self):
        if self._table is None:
            self._table = self._build()
        return self._table

    def _build(self):
        return {"ready": True}
