"""LNT006 trigger: @shared_state attribute written without the guard."""

from repro.concurrency import new_lock, shared_state


@shared_state(guard="_lock")
class Counter:
    def __init__(self):
        self._lock = new_lock("fixture.Counter")
        self.value = 0

    def bump(self):
        self.value = self.value + 1
