"""LNT009 clean twin: the test and the mutation share one lock scope."""

from repro.concurrency import new_lock, shared_state


@shared_state(guard="_lock")
class Tally:
    def __init__(self):
        self._lock = new_lock("fixture.Tally")
        self._counts = {}

    def bump(self, key):
        with self._lock:
            if key in self._counts:
                self._counts[key] += 1
            else:
                self._counts[key] = 1
