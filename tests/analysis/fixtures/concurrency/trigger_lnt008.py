"""LNT008 trigger: time.sleep while holding a module lock."""

import threading
import time

LOCK = threading.Lock()


def throttled_flush():
    with LOCK:
        time.sleep(0.1)
