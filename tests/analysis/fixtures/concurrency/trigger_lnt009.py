"""LNT009 trigger: check-then-act on shared state outside the guard."""

from repro.concurrency import new_lock, shared_state


@shared_state(guard="_lock")
class Tally:
    def __init__(self):
        self._lock = new_lock("fixture.Tally")
        self._counts = {}

    def bump(self, key):
        if key in self._counts:
            self._counts[key] += 1
        else:
            self._counts[key] = 1
