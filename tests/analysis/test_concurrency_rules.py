"""Whole-program concurrency rules (LNT006–LNT010): fixture corpus,
cross-file resolution, suppression, and selection behaviour."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import (
    CONCURRENCY_REGISTRY,
    ConcurrencyLinter,
    iter_concurrency_rules,
    module_name_for,
)

FIXTURES = Path(__file__).parent / "fixtures" / "concurrency"

ALL_CODES = ("LNT006", "LNT007", "LNT008", "LNT009", "LNT010")


def lint_fixture(name: str, **linter_kw):
    return ConcurrencyLinter(**linter_kw).lint_paths([FIXTURES / name])


def lint_sources(sources, **linter_kw):
    return ConcurrencyLinter(**linter_kw).lint_sources(sources)


class TestRegistry:
    def test_all_five_rules_registered(self):
        assert sorted(CONCURRENCY_REGISTRY) == list(ALL_CODES)

    def test_rules_have_metadata(self):
        for code, rule in CONCURRENCY_REGISTRY.items():
            assert rule.code == code
            assert rule.name
            assert rule.description

    def test_iter_is_code_ordered(self):
        assert [rule.code for rule in iter_concurrency_rules()] == list(
            ALL_CODES
        )

    def test_select_unknown_code_raises(self):
        with pytest.raises(ValueError, match="unknown rule codes"):
            ConcurrencyLinter(select=["LNT999"])


class TestFixtureCorpus:
    """Each trigger yields exactly its one finding; each twin is clean."""

    @pytest.mark.parametrize("code", ALL_CODES)
    def test_trigger_yields_exactly_its_finding(self, code):
        report = lint_fixture(f"trigger_{code.lower()}.py")
        assert [f.code for f in report.findings] == [code], [
            (f.code, f.line, f.message) for f in report.findings
        ]

    @pytest.mark.parametrize("code", ALL_CODES)
    def test_clean_twin_is_clean(self, code):
        report = lint_fixture(f"clean_{code.lower()}.py")
        assert report.findings == []

    def test_findings_carry_location_and_message(self):
        report = lint_fixture("trigger_lnt006.py")
        (finding,) = report.findings
        assert finding.path.endswith("trigger_lnt006.py")
        assert finding.line > 1
        assert "shared" in finding.message

    def test_whole_corpus_in_one_graph(self):
        """All fixtures linted together still yield one finding each —
        the clean twins must not perturb the triggers' analysis."""
        report = ConcurrencyLinter().lint_paths(
            [FIXTURES / f"{kind}_{code.lower()}.py"
             for code in ALL_CODES
             for kind in ("trigger", "clean")]
        )
        assert sorted(f.code for f in report.findings) == list(ALL_CODES)


class TestCrossFile:
    def test_lock_order_cycle_across_modules(self):
        """ABBA split over two files, the locks imported from a third."""
        locks = (
            "import threading\n"
            "ALPHA = threading.Lock()\n"
            "BETA = threading.Lock()\n"
        )
        one = (
            "from shared_locks import ALPHA, BETA\n"
            "def forward():\n"
            "    with ALPHA:\n"
            "        with BETA:\n"
            "            pass\n"
        )
        two = (
            "from shared_locks import ALPHA, BETA\n"
            "def backward():\n"
            "    with BETA:\n"
            "        with ALPHA:\n"
            "            pass\n"
        )
        report = lint_sources(
            [
                ("src/shared_locks.py", locks),
                ("src/one.py", one),
                ("src/two.py", two),
            ]
        )
        assert [f.code for f in report.findings] == ["LNT007"]
        assert "shared_locks.ALPHA" in report.findings[0].message

    def test_thread_reachable_global_write(self):
        source = (
            "import threading\n"
            "TOTAL = 0\n"
            "def worker():\n"
            "    global TOTAL\n"
            "    TOTAL = TOTAL + 1\n"
            "def start():\n"
            "    thread = threading.Thread(target=worker)\n"
            "    thread.start()\n"
            "    return thread\n"
        )
        report = lint_sources([("src/jobs.py", source)])
        assert [f.code for f in report.findings] == ["LNT006"]
        assert "TOTAL" in report.findings[0].message

    def test_same_code_unreached_by_threads_is_clean(self):
        source = (
            "TOTAL = 0\n"
            "def worker():\n"
            "    global TOTAL\n"
            "    TOTAL = TOTAL + 1\n"
        )
        report = lint_sources([("src/jobs.py", source)])
        assert report.findings == []


class TestAnnotationSemantics:
    def test_guarded_by_method_is_clean(self):
        source = (
            "from repro.concurrency import guarded_by, new_lock, "
            "shared_state\n"
            "@shared_state(guard='_lock')\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = new_lock('box')\n"
            "        self.n = 0\n"
            "    @guarded_by('_lock')\n"
            "    def _bump_locked(self):\n"
            "        self.n += 1\n"
        )
        report = lint_sources([("src/box.py", source)])
        assert report.findings == []

    def test_exempt_attr_is_clean(self):
        source = (
            "from repro.concurrency import new_lock, shared_state\n"
            "@shared_state(guard='_lock', exempt=('_scratch',))\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = new_lock('box')\n"
            "        self._scratch = None\n"
            "    def note(self, value):\n"
            "        self._scratch = value\n"
        )
        report = lint_sources([("src/box.py", source)])
        assert report.findings == []

    def test_init_writes_are_exempt(self):
        source = (
            "from repro.concurrency import new_lock, shared_state\n"
            "@shared_state(guard='_lock')\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = new_lock('box')\n"
            "        self.n = 0\n"
            "        if self.n == 0:\n"
            "            self.n = 1\n"
        )
        report = lint_sources([("src/box.py", source)])
        assert report.findings == []


class TestSuppression:
    def test_inline_disable_silences_finding(self):
        source = (
            "import threading\n"
            "import time\n"
            "LOCK = threading.Lock()\n"
            "def flush():\n"
            "    with LOCK:\n"
            "        time.sleep(0.1)  # lint: disable=LNT008\n"
        )
        assert lint_sources([("src/slow.py", source)]).findings == []

    def test_disable_of_other_code_does_not_silence(self):
        source = (
            "import threading\n"
            "import time\n"
            "LOCK = threading.Lock()\n"
            "def flush():\n"
            "    with LOCK:\n"
            "        time.sleep(0.1)  # lint: disable=LNT006\n"
        )
        report = lint_sources([("src/slow.py", source)])
        assert [f.code for f in report.findings] == ["LNT008"]


class TestSelection:
    def test_select_narrows_to_one_rule(self):
        report = lint_fixture("trigger_lnt008.py", select=["LNT006"])
        assert report.findings == []

    def test_ignore_drops_rule(self):
        report = lint_fixture("trigger_lnt008.py", ignore=["LNT008"])
        assert report.findings == []

    def test_syntax_error_reported_as_lnt000(self):
        report = lint_sources([("src/broken.py", "def f(:\n")])
        assert [f.code for f in report.findings] == ["LNT000"]


class TestModuleNames:
    def test_src_root_is_stripped(self):
        assert (
            module_name_for("src/repro/obs/metrics.py")
            == "repro.obs.metrics"
        )

    def test_bare_file_uses_stem(self):
        assert module_name_for("scratch.py") == "scratch"


class TestProductionTreeIsClean:
    def test_src_passes_the_concurrency_gate(self):
        src = Path(__file__).resolve().parents[2] / "src"
        report = ConcurrencyLinter().lint_paths([src])
        assert report.findings == [], [
            (f.path, f.line, f.code) for f in report.findings
        ]
