"""Fixture: hot-path module whose loops are sanctioned or positional —
must pass LNT002 even when registered as a hot path."""


def reference_mask(scores, users, train_items):  # lint: reference-path
    for user in users:
        scores[user][train_items[user]] = float("-inf")
    return scores


def chunked(users, chunk_size):
    out = []
    for start in range(0, len(users), chunk_size):
        out.append(users[start : start + chunk_size])
    return out
