"""Fixture: None defaults with in-body construction — must pass LNT004."""


def collect(batch, seen=None):
    if seen is None:
        seen = []
    seen.extend(batch)
    return seen


def tally(key, counts=None):
    counts = dict(counts or {})
    counts[key] = counts.get(key, 0) + 1
    return counts
