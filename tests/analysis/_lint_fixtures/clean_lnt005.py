"""Fixture: typed handlers that record the failure — must pass LNT005."""

import warnings


def load(path):
    try:
        return open(path).read()
    except OSError as exc:
        warnings.warn(f"could not read {path}: {exc}", RuntimeWarning)
        return None
