"""Fixture: entry points under no_grad or delegating — must pass
LNT003 even when registered as an entry-point module."""

from repro.nn import no_grad


class Scorer:
    def all_scores(self, users):
        with no_grad():
            return self.user_vectors[users] @ self.item_vectors.T


class Wrapper:
    def all_scores(self, users):
        return self.backbone.all_scores(users)
