"""Fixture: per-entity Python loop — must trigger LNT002 when this
file is registered as a hot path."""


def slow_mask(scores, users, train_items):
    for user in users:
        for item in train_items[user]:
            scores[user][item] = float("-inf")
    return scores
