"""Fixture: scoring entry point without no_grad — must trigger LNT003
when this file is registered as an entry-point module."""


class Scorer:
    def all_scores(self, users):
        return self.user_vectors[users] @ self.item_vectors.T
