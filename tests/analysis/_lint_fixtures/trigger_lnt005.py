"""Fixture: bare except and silent pass — must trigger LNT005."""


def load(path):
    try:
        return open(path).read()
    except:
        return None


def maybe_close(handle):
    try:
        handle.close()
    except OSError:
        pass
