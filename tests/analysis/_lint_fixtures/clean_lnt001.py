"""Fixture: threaded Generator usage — must pass LNT001."""

import numpy as np


def draw_batch(n, seed=0):
    rng = np.random.default_rng(seed)
    picks = rng.choice(n, size=4)
    rng.shuffle(picks)
    return picks
