"""Fixture: mutable default arguments — must trigger LNT004."""


def collect(batch, seen=[]):
    seen.extend(batch)
    return seen


def tally(key, counts={}, labels=set()):
    counts[key] = counts.get(key, 0) + 1
    labels.add(key)
    return counts
