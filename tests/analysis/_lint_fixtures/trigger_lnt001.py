"""Fixture: legacy global NumPy RNG usage — must trigger LNT001."""

import numpy as np
from numpy.random import shuffle


def draw_batch(n):
    np.random.seed(0)
    picks = np.random.choice(n, size=4)
    shuffle(picks)
    return picks
