"""Per-rule fixture coverage: each rule has a module that must trigger
it and one that must pass, plus directive/suppression behaviour."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import Directives, Linter, RULE_REGISTRY

FIXTURES = Path(__file__).parent / "_lint_fixtures"


def codes_of(findings):
    return {finding.code for finding in findings}


def lint_fixture(name: str, **linter_kw):
    path = FIXTURES / name
    return Linter(**linter_kw).lint_file(path)


class TestRegistry:
    def test_all_five_rules_registered(self):
        assert sorted(RULE_REGISTRY) == [
            "LNT001", "LNT002", "LNT003", "LNT004", "LNT005",
        ]

    def test_rules_have_metadata(self):
        for code, cls in RULE_REGISTRY.items():
            rule = cls()
            assert rule.code == code
            assert rule.name
            assert rule.description

    def test_select_unknown_code_raises(self):
        with pytest.raises(ValueError, match="unknown rule codes"):
            Linter(select=["LNT999"])


class TestLNT001:
    def test_trigger(self):
        findings = lint_fixture("trigger_lnt001.py")
        lnt001 = [f for f in findings if f.code == "LNT001"]
        # np.random.seed, np.random.choice, and the legacy import.
        assert len(lnt001) >= 3
        assert any("seed" in f.message for f in lnt001)

    def test_clean(self):
        assert "LNT001" not in codes_of(lint_fixture("clean_lnt001.py"))

    def test_alias_tracking(self):
        source = (
            "import numpy as xp\n"
            "def f(n):\n"
            "    return xp.random.randint(0, n)\n"
        )
        findings = Linter(select=["LNT001"]).lint_source(source)
        assert codes_of(findings) == {"LNT001"}

    def test_default_rng_is_allowed(self):
        source = (
            "import numpy as np\n"
            "def f(n):\n"
            "    return np.random.default_rng(0).integers(0, n)\n"
        )
        assert not Linter(select=["LNT001"]).lint_source(source)


class TestLNT002:
    HOT = {"hot_paths": ("trigger_lnt002.py", "clean_lnt002.py")}

    def test_trigger_when_registered_hot(self):
        findings = lint_fixture("trigger_lnt002.py", **self.HOT)
        assert "LNT002" in codes_of(findings)

    def test_not_applied_outside_hot_paths(self):
        findings = lint_fixture("trigger_lnt002.py")
        assert "LNT002" not in codes_of(findings)

    def test_reference_path_marker_suppresses(self):
        findings = lint_fixture("clean_lnt002.py", **self.HOT)
        assert "LNT002" not in codes_of(findings)

    def test_range_loops_are_positional_not_per_entity(self):
        source = (
            "def f(users, chunk):\n"
            "    for start in range(0, len(users), chunk):\n"
            "        users[start:start + chunk] += 1\n"
        )
        linter = Linter(select=["LNT002"], hot_paths=("<string>",))
        assert not linter.lint_source(source)

    def test_marker_on_loop_line(self):
        source = (
            "def f(users):\n"
            "    for user in users:  # lint: reference-path\n"
            "        print(user)\n"
        )
        linter = Linter(select=["LNT002"], hot_paths=("<string>",))
        assert not linter.lint_source(source)


class TestLNT003:
    ENTRY = {"entry_paths": ("trigger_lnt003.py", "clean_lnt003.py")}

    def test_trigger_when_registered(self):
        findings = lint_fixture("trigger_lnt003.py", **self.ENTRY)
        assert "LNT003" in codes_of(findings)

    def test_not_applied_outside_entry_paths(self):
        findings = lint_fixture("trigger_lnt003.py")
        assert "LNT003" not in codes_of(findings)

    def test_no_grad_and_delegation_pass(self):
        findings = lint_fixture("clean_lnt003.py", **self.ENTRY)
        assert "LNT003" not in codes_of(findings)


class TestLNT004:
    def test_trigger(self):
        findings = lint_fixture("trigger_lnt004.py")
        lnt004 = [f for f in findings if f.code == "LNT004"]
        assert len(lnt004) == 3  # [], {}, set()

    def test_clean(self):
        assert "LNT004" not in codes_of(lint_fixture("clean_lnt004.py"))

    def test_keyword_only_defaults(self):
        source = "def f(*, cache={}):\n    return cache\n"
        assert codes_of(Linter().lint_source(source)) == {"LNT004"}


class TestLNT005:
    def test_trigger(self):
        findings = lint_fixture("trigger_lnt005.py")
        lnt005 = [f for f in findings if f.code == "LNT005"]
        assert len(lnt005) == 2  # bare except + silent pass
        assert any("bare" in f.message for f in lnt005)
        assert any("silently" in f.message for f in lnt005)

    def test_clean(self):
        assert "LNT005" not in codes_of(lint_fixture("clean_lnt005.py"))


class TestDirectives:
    def test_line_disable(self):
        source = (
            "def f(x=[]):  # lint: disable=LNT004\n"
            "    return x\n"
        )
        assert not Linter().lint_source(source)

    def test_line_disable_other_code_does_not_suppress(self):
        source = (
            "def f(x=[]):  # lint: disable=LNT005\n"
            "    return x\n"
        )
        assert codes_of(Linter().lint_source(source)) == {"LNT004"}

    def test_file_disable(self):
        source = (
            "# lint: file-disable=LNT004\n"
            "def f(x=[]):\n"
            "    return x\n"
            "def g(y={}):\n"
            "    return y\n"
        )
        assert not Linter().lint_source(source)

    def test_parse_collects_all_forms(self):
        directives = Directives.parse(
            "# lint: file-disable=LNT001\n"
            "x = 1  # lint: disable=LNT004, LNT005\n"
            "y = 2  # lint: reference-path\n"
        )
        assert directives.file_disabled == {"LNT001"}
        assert directives.line_disabled == {2: {"LNT004", "LNT005"}}
        assert directives.reference_lines == {3}

    def test_directive_inside_string_ignored(self):
        source = 'note = "# lint: file-disable=LNT004"\ndef f(x=[]):\n    return x\n'
        assert codes_of(Linter().lint_source(source)) == {"LNT004"}


class TestEngine:
    def test_syntax_error_reported_as_finding(self):
        findings = Linter().lint_source("def broken(:\n")
        assert codes_of(findings) == {"LNT000"}

    def test_fixture_walk_is_excluded_by_default(self):
        report = Linter().lint_paths([Path(__file__).parent])
        assert report.ok  # _lint_fixtures skipped, test modules clean

    def test_explicit_file_bypasses_exclusion(self):
        findings = Linter().lint_file(FIXTURES / "trigger_lnt004.py")
        assert findings

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            Linter().lint_paths(["does/not/exist"])

    def test_repo_tree_is_clean_at_head(self):
        root = Path(__file__).resolve().parents[2]
        report = Linter().lint_paths(
            [root / "src", root / "tests", root / "benchmarks"]
        )
        assert report.ok, "\n".join(f.format() for f in report.findings)
