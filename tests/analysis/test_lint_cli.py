"""CLI behaviour of ``python -m repro.lint``: exit codes and formats."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "_lint_fixtures"
CONCURRENCY_FIXTURES = Path(__file__).parent / "fixtures" / "concurrency"


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )


class TestExitCodes:
    def test_head_tree_is_clean(self):
        proc = run_cli("src", "tests", "benchmarks")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_trigger_fixtures_exit_nonzero(self):
        cases = {
            "trigger_lnt001.py": (),
            "trigger_lnt002.py": ("--hot-path", "trigger_lnt002.py"),
            "trigger_lnt003.py": ("--entry-path", "trigger_lnt003.py"),
            "trigger_lnt004.py": (),
            "trigger_lnt005.py": (),
        }
        for name, extra in cases.items():
            proc = run_cli(str(FIXTURES / name), *extra)
            assert proc.returncode == 1, f"{name}: {proc.stdout}{proc.stderr}"
            code = name[len("trigger_") : -len(".py")].upper()
            assert code in proc.stdout, f"{name} output missed {code}"

    def test_missing_path_is_usage_error(self):
        proc = run_cli("no/such/dir")
        assert proc.returncode == 2
        assert "error" in proc.stderr


class TestFormats:
    def test_json_output_parses(self):
        proc = run_cli(str(FIXTURES / "trigger_lnt004.py"), "--format", "json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        codes = {f["code"] for f in payload["findings"]}
        assert codes == {"LNT004"}
        first = payload["findings"][0]
        assert set(first) == {"path", "line", "col", "code", "message"}

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for code in ("LNT001", "LNT002", "LNT003", "LNT004", "LNT005"):
            assert code in proc.stdout


class TestConcurrencyFlag:
    def test_src_tree_passes_the_gate(self):
        proc = run_cli("--concurrency", "src")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_trigger_fixture_exits_nonzero(self):
        proc = run_cli(
            "--concurrency", str(CONCURRENCY_FIXTURES / "trigger_lnt008.py")
        )
        assert proc.returncode == 1
        assert "LNT008" in proc.stdout

    def test_clean_fixture_exits_zero(self):
        proc = run_cli(
            "--concurrency", str(CONCURRENCY_FIXTURES / "clean_lnt008.py")
        )
        assert proc.returncode == 0

    def test_list_rules_includes_concurrency_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for code in ("LNT006", "LNT007", "LNT008", "LNT009", "LNT010"):
            assert code in proc.stdout
        assert "--concurrency" in proc.stdout

    def test_json_format(self):
        proc = run_cli(
            "--concurrency",
            str(CONCURRENCY_FIXTURES / "trigger_lnt010.py"),
            "--format",
            "json",
        )
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        codes = {f["code"] for f in payload["findings"]}
        assert codes == {"LNT010"}

    def test_in_process_select(self, capsys):
        status = main(
            [
                "--concurrency",
                str(CONCURRENCY_FIXTURES / "trigger_lnt009.py"),
                "--select",
                "LNT006",
            ]
        )
        assert status == 0


class TestInProcessMain:
    def test_main_returns_zero_on_clean(self, capsys):
        status = main([str(FIXTURES / "clean_lnt004.py")])
        assert status == 0
        assert "clean" in capsys.readouterr().out

    def test_main_returns_one_on_findings(self, capsys):
        status = main([str(FIXTURES / "trigger_lnt005.py")])
        assert status == 1
        out = capsys.readouterr().out
        assert "LNT005" in out
        assert "2 findings" in out

    def test_select_filters_rules(self, capsys):
        status = main(
            [str(FIXTURES / "trigger_lnt005.py"), "--select", "LNT004"]
        )
        assert status == 0

    def test_ignore_drops_rule(self, capsys):
        status = main(
            [str(FIXTURES / "trigger_lnt005.py"), "--ignore", "LNT005"]
        )
        assert status == 0
