"""Shared fixtures for the retrieval tests: one model/index pair.

The model is an untrained BPRMF — retrieval correctness properties
(routing determinism, exact agreement at full probe, monotone recall)
hold for *any* embedding table, so there is no reason to pay for
training in unit tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import BPRMF
from repro.retrieval import build_index

NUM_USERS, NUM_ITEMS, DIM = 24, 60, 8
NUM_PARTITIONS = 6
HEAD_SIZE = 5


@pytest.fixture
def model():
    return BPRMF(NUM_USERS, NUM_ITEMS, DIM, rng=np.random.default_rng(3))


@pytest.fixture
def popularity():
    """Item 0 most popular, descending."""
    return np.arange(NUM_ITEMS, dtype=np.float64)[::-1].copy()


@pytest.fixture
def index(model, popularity):
    return build_index(
        model,
        num_partitions=NUM_PARTITIONS,
        popularity=popularity,
        popular_head=HEAD_SIZE,
        seed=0,
    )
