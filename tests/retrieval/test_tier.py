"""Serving integration: RetrievalTier lifecycle, atomic index swap on
hot reload, and chaos with the tier enabled."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import testing
from repro.ckpt import CheckpointManager
from repro.models import BPRMF
from repro.perf import CounterRegistry
from repro.retrieval import RetrievalTier, build_index
from repro.serve import (
    LEVEL_LIVE,
    LEVELS,
    RELOADED,
    ROLLED_BACK,
    CheckpointModelProvider,
    CircuitBreaker,
    RecommendationService,
    RetryPolicy,
    StaticModelProvider,
)

from ..serve.test_breaker import FakeClock

NUM_USERS, NUM_ITEMS, DIM = 8, 30, 4
FINGERPRINT = "fp-serving"


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    testing.reset()


def make_model(seed: int = 0) -> BPRMF:
    return BPRMF(NUM_USERS, NUM_ITEMS, DIM, rng=np.random.default_rng(seed))


def make_tier(**kwargs) -> RetrievalTier:
    defaults = dict(
        n_probe=2,
        num_partitions=4,
        popularity=np.arange(NUM_ITEMS, dtype=np.float64),
        popular_head=5,
        counters=CounterRegistry(),
    )
    defaults.update(kwargs)
    return RetrievalTier(**defaults)


class TestTierLifecycle:
    def test_builds_once_then_reuses_for_same_version(self):
        provider = StaticModelProvider(make_model())
        tier = make_tier()
        for user in range(4):
            items = tier.recommend(provider, user, top_n=3)
            assert items is not None and items.size == 3
        assert tier.counters.get("serve.retrieval.builds") == 1
        assert tier.counters.get("serve.retrieval.served") == 4

    def test_auto_build_off_means_exact_fallback(self):
        provider = StaticModelProvider(make_model())
        tier = make_tier(auto_build=False)
        assert tier.recommend(provider, 0, top_n=3) is None
        assert tier.counters.get("serve.retrieval.fallback") == 1

    def test_prebuilt_index_pinned_to_first_version(self):
        model = make_model()
        index = build_index(model, num_partitions=4)
        provider = StaticModelProvider(model, version="v1")
        tier = make_tier(index=index, auto_build=False)
        assert tier.recommend(provider, 0, top_n=3) is not None
        # Version moves: the pinned index is dropped, not served stale.
        provider._version = "v2"
        assert tier.recommend(provider, 0, top_n=3) is None
        assert tier.counters.get("serve.retrieval.stale") == 1

    def test_provider_errors_absorbed_into_fallback(self):
        class BrokenProvider:
            def model(self):
                raise RuntimeError("scoring backend down")

            def version(self):
                return "v1"

        tier = make_tier()
        assert tier.recommend(BrokenProvider(), 0, top_n=3) is None
        assert tier.counters.get("serve.retrieval.errors") == 1

    def test_results_match_direct_retriever(self):
        model = make_model()
        provider = StaticModelProvider(model)
        tier = make_tier(n_probe=4)
        items = tier.recommend(provider, 2, top_n=5)
        np.testing.assert_array_equal(items, model.recommend(2, top_n=5))


class TestServiceIntegration:
    @staticmethod
    def make_service(provider, tier):
        clock = FakeClock()
        service = RecommendationService(
            provider,
            popularity=np.arange(NUM_ITEMS),
            default_top_n=4,
            retry=RetryPolicy(max_attempts=2, base_delay=0.001),
            breaker=CircuitBreaker(
                failure_threshold=3, recovery_time=1.0, clock=clock
            ),
            clock=clock,
            sleep=lambda seconds: clock.advance(seconds),
            retrieval=tier,
        )
        return service, clock

    def test_live_answers_route_through_index(self):
        # No private registry: the service injects its own, so routing
        # outcomes surface in health().
        tier = make_tier(counters=None)
        service, _ = self.make_service(
            StaticModelProvider(make_model()), tier
        )
        response = service.recommend(1, exclude={0})
        assert response.level == LEVEL_LIVE
        assert 0 not in response.items
        # The tier shares the service counter registry, so routing
        # outcomes surface in health().
        counters = service.health()["counters"]
        assert counters.get("serve.retrieval.served", 0) >= 1

    def test_chaos_with_tier_never_raises(self):
        tier = make_tier()
        service, clock = self.make_service(
            StaticModelProvider(make_model()), tier
        )
        for user in range(NUM_USERS):  # warm the stale cache
            service.recommend(user)
        with testing.CrashPoint(testing.SERVE_SCORE, at=1, every=1):
            for user in range(NUM_USERS):
                response = service.recommend(user)
                assert response.level in LEVELS
                assert response.items.size > 0
                assert response.degraded
        clock.advance(1.5)
        assert service.recommend(0).level == LEVEL_LIVE


class TestAtomicSwap:
    @staticmethod
    def snapshot(model, step):
        return {
            "fingerprint": FINGERPRINT,
            "step": step,
            "model": model.state_dict(),
        }

    def make_provider(self, directory):
        return CheckpointModelProvider(
            str(directory),
            builder=make_model,
            retrieval=True,
            retrieval_params=dict(num_partitions=4, popular_head=5),
        )

    def test_poll_swaps_model_and_index_together(self, tmp_path):
        from repro.retrieval import model_fingerprint

        manager = CheckpointManager(str(tmp_path))
        manager.save(self.snapshot(make_model(1), 1), step=1)
        provider = self.make_provider(tmp_path)
        assert provider.poll() == RELOADED
        index = provider.index()
        assert index is not None
        assert index.fingerprint == model_fingerprint(provider.model())
        # The index was persisted next to the snapshot for the next
        # serving process.
        assert any(
            name.startswith("index-") for name in os.listdir(tmp_path)
        )

    def test_reload_replaces_index_with_matching_one(self, tmp_path):
        from repro.retrieval import model_fingerprint

        manager = CheckpointManager(str(tmp_path))
        manager.save(self.snapshot(make_model(1), 1), step=1)
        provider = self.make_provider(tmp_path)
        provider.poll()
        stale = provider.index()
        manager.save(self.snapshot(make_model(2), 2), step=2)
        # Step 1's persisted index mismatches model 2 and is skipped
        # (warned), forcing a fresh build for the new item table.
        with pytest.warns(RuntimeWarning, match="fingerprint"):
            assert provider.poll() == RELOADED
        fresh = provider.index()
        assert fresh is not stale
        assert fresh.fingerprint == model_fingerprint(provider.model())

    def test_rollback_restores_previous_index(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save(self.snapshot(make_model(1), 1), step=1)
        provider = self.make_provider(tmp_path)
        provider.poll()
        good_index = provider.index()
        broken = {
            key: np.full_like(value, np.nan)
            for key, value in make_model(2).state_dict().items()
        }
        manager.save(
            {"fingerprint": FINGERPRINT, "step": 2, "model": broken}, step=2
        )
        with pytest.warns(RuntimeWarning, match="canary probe failed"):
            assert provider.poll() == ROLLED_BACK
        assert provider.index() is good_index
        assert provider.version() == "ckpt-step-1"

    def test_retrieval_disabled_exposes_no_index(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save(self.snapshot(make_model(1), 1), step=1)
        provider = CheckpointModelProvider(str(tmp_path), builder=make_model)
        provider.poll()
        assert provider.index() is None
