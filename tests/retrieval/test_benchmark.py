"""Benchmark plumbing and the ``python -m repro.retrieval`` CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.models import BPRMF
from repro.retrieval import (
    ApproximateScorer,
    build_index,
    format_retrieval_table,
    ranking_overlap,
    run_retrieval_suite,
    save_retrieval_results,
)
from repro.retrieval.__main__ import main


@pytest.fixture(scope="module")
def payload():
    """One tiny end-to-end sweep shared by the payload tests."""
    return run_retrieval_suite(
        scale=0.05,
        epochs=2,
        embed_dim=16,
        num_partitions=4,
        n_probes=(1, 2, 4),
        top_k=10,
        sample_users=32,
        popular_head=10,
    )


class TestSuitePayload:
    def test_curve_covers_requested_probes(self, payload):
        assert [point["n_probe"] for point in payload["curve"]] == [1, 2, 4]

    def test_full_probe_point_is_exact(self, payload):
        full = payload["curve"][-1]
        assert full["recall_at_k_vs_exact"] == pytest.approx(1.0)
        assert full["recall_delta"] == pytest.approx(0.0, abs=1e-12)
        assert full["scored_reduction"] == pytest.approx(1.0)

    def test_reduction_decreases_with_probes(self, payload):
        reductions = [p["scored_reduction"] for p in payload["curve"]]
        assert all(
            b <= a + 1e-9 for a, b in zip(reductions, reductions[1:])
        )

    def test_payload_is_json_safe_and_formats(self, payload, tmp_path):
        path = tmp_path / "BENCH_retrieval.json"
        save_retrieval_results(payload, str(path))
        restored = json.loads(path.read_text())
        assert restored["settings"]["dataset"] == "hetrec-del"
        table = format_retrieval_table(payload)
        assert "n_probe" in table and "reduction" in table


class TestRankingOverlap:
    def test_full_probe_overlap_is_one(self):
        model = BPRMF(10, 40, 8, rng=np.random.default_rng(0))
        index = build_index(model, num_partitions=4)
        scorer = ApproximateScorer(
            model, index, n_probe=index.num_partitions
        )
        users = np.arange(10)
        assert ranking_overlap(
            model, scorer, users, top_k=5
        ) == pytest.approx(1.0)

    def test_masked_items_do_not_count(self):
        model = BPRMF(10, 40, 8, rng=np.random.default_rng(0))
        index = build_index(model, num_partitions=4)
        scorer = ApproximateScorer(
            model, index, n_probe=index.num_partitions
        )
        users = np.arange(10)
        mask = [np.arange(5) for _ in range(10)]
        assert ranking_overlap(
            model, scorer, users, mask_items=mask, top_k=5
        ) == pytest.approx(1.0)


class TestCli:
    def test_smoke_exits_zero(self, capsys):
        assert main(["smoke", "--scale", "0.02", "--partitions", "4"]) == 0
        out = capsys.readouterr().out
        assert "OK: retrieval smoke passed" in out

    def test_default_command_is_smoke(self, capsys):
        assert main([]) == 0
        assert "retrieval smoke passed" in capsys.readouterr().out

    def test_bench_writes_payload(self, tmp_path, capsys):
        out_path = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--scale", "0.05",
                "--epochs", "2",
                "--embed-dim", "16",
                "--partitions", "4",
                "--top-k", "10",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["curve"]
        assert "n_probe" in capsys.readouterr().out
