"""Index persistence: atomic save, torn-write detection, pruning."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.retrieval import (
    index_path,
    load_index,
    prune_indexes,
    save_index,
)


class TestRoundTrip:
    def test_save_then_load_preserves_routing(self, index, tmp_path):
        path = save_index(index, str(tmp_path), step=7)
        assert path == index_path(str(tmp_path), 7)
        assert os.path.exists(path)
        loaded = load_index(str(tmp_path))
        users = np.random.default_rng(0).normal(
            size=(4, index.centroids.shape[1])
        )
        for user in users:
            np.testing.assert_array_equal(
                loaded.candidates(user, 2), index.candidates(user, 2)
            )
        assert loaded.fingerprint == index.fingerprint

    def test_no_tmp_file_left_behind(self, index, tmp_path):
        save_index(index, str(tmp_path), step=1)
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]

    def test_missing_directory_is_a_miss(self, tmp_path):
        assert load_index(str(tmp_path / "nowhere")) is None

    def test_loads_newest_step_first(self, index, tmp_path):
        save_index(index, str(tmp_path), step=1)
        newer = index
        newer.strategy = "kmeans-newer"
        save_index(newer, str(tmp_path), step=2)
        assert load_index(str(tmp_path)).strategy == "kmeans-newer"

    def test_exact_step_pin(self, index, tmp_path):
        save_index(index, str(tmp_path), step=3)
        assert load_index(str(tmp_path), step=3) is not None
        assert load_index(str(tmp_path), step=4) is None


class TestCorruption:
    def test_torn_write_skipped_with_warning(self, index, tmp_path):
        path = save_index(index, str(tmp_path), step=1)
        payload = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(payload[: len(payload) // 2])
        with pytest.warns(RuntimeWarning, match="skipping unusable"):
            assert load_index(str(tmp_path)) is None

    def test_torn_newest_falls_back_to_older_good_payload(
        self, index, tmp_path
    ):
        save_index(index, str(tmp_path), step=1)
        newest = save_index(index, str(tmp_path), step=2)
        with open(newest, "wb") as handle:
            handle.write(b"garbage")
        with pytest.warns(RuntimeWarning, match="skipping unusable"):
            loaded = load_index(str(tmp_path))
        assert loaded is not None
        assert loaded.fingerprint == index.fingerprint

    def test_fingerprint_mismatch_skipped_with_warning(self, index, tmp_path):
        save_index(index, str(tmp_path), step=1)
        with pytest.warns(RuntimeWarning, match="fingerprint"):
            assert (
                load_index(str(tmp_path), expected_fingerprint="other")
                is None
            )


class TestPruning:
    def test_prune_drops_unretained_steps(self, index, tmp_path):
        for step in (1, 2, 3):
            save_index(index, str(tmp_path), step=step)
        prune_indexes(str(tmp_path), keep_steps=[2])
        remaining = sorted(os.listdir(tmp_path))
        assert remaining == [os.path.basename(index_path(str(tmp_path), 2))]

    def test_prune_of_missing_directory_is_noop(self, tmp_path):
        prune_indexes(str(tmp_path / "nowhere"), keep_steps=[1])
