"""Evaluator ``approximate=True``: exactness at full probe, bounded
drift at partial probe, staleness rejection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import Evaluator
from repro.models import BPRMF
from repro.retrieval import IndexMismatch, build_index

NUM_PARTITIONS = 8
#: Partial-probe metric drift bound.  Restricting candidates changes
#: which distractors compete with the relevant items, so partial-probe
#: metrics move in *either* direction — the property is boundedness,
#: not one-sided loss.
TOLERANCE = 0.1


@pytest.fixture(scope="module")
def setup(request):
    small_split = request.getfixturevalue("small_split")
    dataset = request.getfixturevalue("small_dataset")
    model = BPRMF(
        dataset.num_users, dataset.num_items, 16,
        rng=np.random.default_rng(0),
    )
    evaluator = Evaluator(small_split.train, small_split.valid)
    index = build_index(
        model,
        num_partitions=NUM_PARTITIONS,
        popularity=small_split.train.item_degrees(),
        popular_head=20,
        seed=0,
    )
    return model, evaluator, index


def test_full_probe_reproduces_exact_metrics(setup):
    model, evaluator, index = setup
    exact = evaluator.evaluate(model)
    approx = evaluator.evaluate(
        model,
        approximate=True,
        index=index,
        n_probe=index.num_partitions,
    )
    for key, value in exact.metrics.items():
        assert approx.metrics[key] == pytest.approx(value, abs=1e-12), key


def test_partial_probe_within_tolerance(setup):
    model, evaluator, index = setup
    exact = evaluator.evaluate(model)
    approx = evaluator.evaluate(
        model, approximate=True, index=index, n_probe=NUM_PARTITIONS // 2
    )
    for key, value in exact.metrics.items():
        assert abs(approx.metrics[key] - value) <= TOLERANCE, (
            f"{key}: approximate {approx.metrics[key]:.4f} drifts more "
            f"than {TOLERANCE} from exact {value:.4f}"
        )


def test_builds_index_on_the_fly_when_none_given(setup):
    model, evaluator, _ = setup
    result = evaluator.evaluate(model, approximate=True, n_probe=2)
    assert set(result.metrics) == {"recall@20", "ndcg@20"}


def test_stale_index_rejected(setup):
    model, evaluator, index = setup
    clone = BPRMF(
        model.num_users, model.num_items, 16,
        rng=np.random.default_rng(99),
    )
    with pytest.raises(IndexMismatch):
        evaluator.evaluate(
            clone, approximate=True, index=index, n_probe=2
        )
