"""Index construction and routing: partitions, centroids, strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IMCAT, IMCATConfig
from repro.models import BPRMF
from repro.retrieval import (
    INDEX_FORMAT_VERSION,
    ClusterIndex,
    ExactIndex,
    build_index,
    model_fingerprint,
)

from ..helpers import tiny_dataset
from .conftest import HEAD_SIZE, NUM_ITEMS, NUM_PARTITIONS


class TestFingerprint:
    def test_deterministic_for_same_model(self, model):
        assert model_fingerprint(model) == model_fingerprint(model)

    def test_changes_with_item_table(self, model):
        before = model_fingerprint(model)
        model.item_embedding.weight.data[0, 0] += 1.0
        assert model_fingerprint(model) != before


class TestExactIndex:
    def test_candidates_are_full_catalogue(self, model):
        index = ExactIndex.build(model)
        np.testing.assert_array_equal(
            index.candidates(np.zeros(4)), np.arange(NUM_ITEMS)
        )
        lists = index.candidate_lists(np.zeros((3, 4)), n_probe=1)
        assert len(lists) == 3
        for shortlist in lists:
            np.testing.assert_array_equal(shortlist, np.arange(NUM_ITEMS))

    def test_rejects_empty_catalogue(self):
        with pytest.raises(ValueError, match="num_items"):
            ExactIndex(0)


class TestClusterIndexValidation:
    def test_partition_ids_must_be_in_range(self):
        with pytest.raises(ValueError, match="partition ids"):
            ClusterIndex(np.array([0, 3]), np.zeros((2, 4)))

    def test_popular_head_must_be_in_range(self):
        with pytest.raises(ValueError, match="popular_head"):
            ClusterIndex(
                np.array([0, 1]), np.zeros((2, 4)),
                popular_head=np.array([5]),
            )

    def test_route_rejects_bad_n_probe(self, index):
        with pytest.raises(ValueError, match="n_probe"):
            index.route(np.zeros((1, index.centroids.shape[1])), 0)


class TestRouting:
    def test_probes_ordered_best_first(self, index):
        rng = np.random.default_rng(0)
        users = rng.normal(size=(8, index.centroids.shape[1]))
        probes = index.route(users, n_probe=index.num_partitions)
        affinity = users @ index.centroids.T
        taken = np.take_along_axis(affinity, probes, axis=1)
        assert (np.diff(taken, axis=1) <= 1e-12).all()

    def test_empty_partitions_never_probed(self):
        # All items in partition 0; partition 1 exists but is empty.
        index = ClusterIndex(
            np.zeros(6, dtype=np.int64),
            np.stack([np.zeros(4), np.full(4, 10.0)]),
        )
        user = np.full(4, 1.0)  # affinity strongly favours partition 1
        probes = index.route(user[None, :], n_probe=2)
        assert 1 not in probes[0]
        np.testing.assert_array_equal(
            index.candidates(user, n_probe=2), np.arange(6)
        )

    def test_full_probe_covers_catalogue(self, index):
        user = np.ones(index.centroids.shape[1])
        shortlist = index.candidates(user, n_probe=index.num_partitions)
        np.testing.assert_array_equal(shortlist, np.arange(NUM_ITEMS))

    def test_shortlist_always_includes_popular_head(self, index):
        user = np.ones(index.centroids.shape[1]) * -5.0
        shortlist = index.candidates(user, n_probe=1)
        assert set(index.popular_head.tolist()) <= set(shortlist.tolist())


class TestBuildIndex:
    def test_every_item_in_exactly_one_partition(self, index):
        assert index.num_items == NUM_ITEMS
        assert index.item_partitions.shape == (NUM_ITEMS,)
        assert index.partition_sizes.sum() == NUM_ITEMS

    def test_popular_head_is_top_popularity_descending(self, index, popularity):
        expected = np.argsort(popularity)[::-1][:HEAD_SIZE]
        np.testing.assert_array_equal(index.popular_head, expected)

    def test_kmeans_fallback_without_intent_exporter(self, model, popularity):
        index = build_index(model, num_partitions=NUM_PARTITIONS, seed=0)
        assert index.strategy == "kmeans"
        assert index.popular_head.size == 0

    def test_intent_strategy_requires_exporter(self, model):
        with pytest.raises(ValueError, match="item_intent_assignments"):
            build_index(model, strategy="intent")

    def test_unknown_strategy_rejected(self, model):
        with pytest.raises(ValueError, match="strategy"):
            build_index(model, strategy="annoy")

    def test_centroid_is_member_mean(self, model):
        index = build_index(model, num_partitions=NUM_PARTITIONS, seed=0)
        from repro.retrieval import item_vectors

        vectors = item_vectors(model)
        for part in range(index.num_partitions):
            members = index.item_partitions == part
            if members.any():
                np.testing.assert_allclose(
                    index.centroids[part], vectors[members].mean(axis=0)
                )


class TestIntentStrategy:
    @staticmethod
    def make_imcat():
        dataset = tiny_dataset()
        backbone = BPRMF(
            dataset.num_users, dataset.num_items, 8,
            rng=np.random.default_rng(0),
        )
        wrapper = IMCAT(
            backbone, dataset, dataset,
            config=IMCATConfig(num_intents=2),
            rng=np.random.default_rng(0),
        )
        return wrapper

    def test_inactive_clustering_exports_none(self):
        wrapper = self.make_imcat()
        assert wrapper.item_intent_assignments() is None
        # auto strategy falls back to kmeans, never errors.
        index = build_index(wrapper, num_partitions=2, seed=0)
        assert index.strategy == "kmeans"

    def test_active_clustering_partitions_by_majority_tag_cluster(self):
        wrapper = self.make_imcat()
        wrapper.clustering_active = True
        wrapper.tag_clusters = np.array([0, 1, 0, 1, 0], dtype=np.int64)
        assignments = wrapper.item_intent_assignments()
        # Item 5 has no tags: exported as -1, routed at build time.
        assert assignments[5] == -1
        assert set(assignments[:5].tolist()) <= {0, 1}

        index = build_index(wrapper, strategy="intent")
        assert index.strategy == "intent"
        # The intent strategy inherits the model's K, not num_partitions.
        assert index.num_partitions == 2
        # Tagged items keep their majority vote; the tagless item landed
        # in a real partition.
        tagged = assignments >= 0
        np.testing.assert_array_equal(
            index.item_partitions[tagged], assignments[tagged]
        )
        assert 0 <= index.item_partitions[5] < 2


class TestSerialisation:
    def test_state_round_trip_preserves_routing(self, index):
        clone = ClusterIndex.from_state(index.state_dict())
        rng = np.random.default_rng(1)
        users = rng.normal(size=(5, index.centroids.shape[1]))
        for user in users:
            np.testing.assert_array_equal(
                index.candidates(user, 2), clone.candidates(user, 2)
            )
        assert clone.fingerprint == index.fingerprint
        assert clone.strategy == index.strategy

    def test_future_format_rejected(self, index):
        state = index.state_dict()
        state["format"] = INDEX_FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="format"):
            ClusterIndex.from_state(state)

    def test_wrong_kind_rejected(self, model):
        state = ExactIndex.build(model).state_dict()
        with pytest.raises(ValueError, match="cluster"):
            ClusterIndex.from_state(state)
