"""Retriever/ApproximateScorer properties: agreement, monotonicity,
escalation, staleness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.retrieval import (
    ApproximateScorer,
    ExactIndex,
    IndexMismatch,
    Retriever,
    build_index,
)

from .conftest import NUM_ITEMS, NUM_PARTITIONS, NUM_USERS

TOP_K = 10


def exact_top_k(model, user, k=TOP_K):
    scores = model.all_scores(np.array([user]))[0]
    return set(np.argsort(scores)[::-1][:k].tolist())


class TestExactAgreement:
    def test_full_probe_matches_exact_recommend(self, model, index):
        for user in range(NUM_USERS):
            approx = Retriever(
                model, index, n_probe=index.num_partitions
            ).recommend(user, top_n=TOP_K)
            exact = model.recommend(user, top_n=TOP_K)
            np.testing.assert_array_equal(approx, exact)

    def test_exact_index_matches_exact_recommend(self, model):
        retriever = Retriever(model, ExactIndex.build(model), n_probe=1)
        for user in (0, NUM_USERS - 1):
            np.testing.assert_array_equal(
                retriever.recommend(user, top_n=TOP_K),
                model.recommend(user, top_n=TOP_K),
            )

    def test_full_probe_scorer_matches_all_scores(self, model, index):
        scorer = ApproximateScorer(
            model, index, n_probe=index.num_partitions
        )
        users = np.arange(NUM_USERS)
        np.testing.assert_allclose(
            scorer.all_scores(users), model.all_scores(users),
            atol=1e-12,
        )


class TestMonotonicity:
    def test_overlap_with_exact_monotone_in_n_probe(self, model, index):
        """More probes can only widen the shortlist, so agreement with
        the exact top-K is non-decreasing (and 1.0 at full probe)."""
        overlaps = []
        for n_probe in range(1, index.num_partitions + 1):
            retriever = Retriever(model, index, n_probe=n_probe)
            hits = 0
            for user in range(NUM_USERS):
                approx = set(
                    retriever.recommend(user, top_n=TOP_K).tolist()
                )
                hits += len(approx & exact_top_k(model, user))
            overlaps.append(hits / (NUM_USERS * TOP_K))
        assert all(b >= a - 1e-12 for a, b in zip(overlaps, overlaps[1:]))
        assert overlaps[-1] == pytest.approx(1.0)

    def test_shortlists_nested_in_n_probe(self, model, index):
        retriever = Retriever(model, index, n_probe=1)
        narrow = set(retriever.shortlist(0).tolist())
        retriever.n_probe = 3
        wide = set(retriever.shortlist(0).tolist())
        assert narrow <= wide


class TestEdgeCases:
    def test_top_n_beyond_shortlist_escalates_to_full_catalogue(
        self, model, index
    ):
        retriever = Retriever(model, index, n_probe=1)
        items = retriever.recommend(0, top_n=NUM_ITEMS)
        assert len(items) == NUM_ITEMS
        assert retriever.last_scored == NUM_ITEMS

    def test_cold_query_never_empty(self, model, index):
        # Whatever corner of the embedding space a user occupies, the
        # popularity head keeps the shortlist non-empty.
        for user in range(NUM_USERS):
            items = Retriever(model, index, n_probe=1).recommend(
                user, top_n=3
            )
            assert items.size > 0

    def test_exclusions_respected(self, model, index):
        retriever = Retriever(model, index, n_probe=index.num_partitions)
        exclude = set(model.recommend(0, top_n=3).tolist())
        items = retriever.recommend(0, top_n=TOP_K, exclude=exclude)
        assert not set(items.tolist()) & exclude

    def test_bad_n_probe_rejected(self, model, index):
        with pytest.raises(ValueError, match="n_probe"):
            Retriever(model, index, n_probe=0)

    def test_scored_fraction_shrinks(self, model, index):
        retriever = Retriever(model, index, n_probe=1)
        retriever.recommend(0, top_n=3)
        assert 0 < retriever.last_scored < NUM_ITEMS


class TestStaleness:
    def test_retriever_rejects_stale_index(self, model, index):
        model.item_embedding.weight.data += 0.5
        with pytest.raises(IndexMismatch):
            Retriever(model, index)

    def test_scorer_rejects_stale_index(self, model, index):
        model.item_embedding.weight.data += 0.5
        with pytest.raises(IndexMismatch):
            ApproximateScorer(model, index)

    def test_validate_false_skips_the_check(self, model, index):
        model.item_embedding.weight.data += 0.5
        retriever = Retriever(model, index, validate=False)
        assert retriever.recommend(0, top_n=3).size > 0


class TestScorerAccounting:
    def test_scored_items_and_queries_accumulate(self, model, index):
        scorer = ApproximateScorer(model, index, n_probe=1)
        users = np.arange(NUM_USERS)
        scores = scorer.all_scores(users)
        assert scores.shape == (NUM_USERS, NUM_ITEMS)
        assert scorer.queries == NUM_USERS
        # Sub-linear: strictly fewer pairwise scores than brute force.
        assert 0 < scorer.scored_items < NUM_USERS * NUM_ITEMS
        # Off-shortlist columns are -inf, shortlist ones finite.
        finite = np.isfinite(scores).sum()
        assert finite == scorer.scored_items

    def test_rebuilt_index_accepted_after_model_change(self, model, index):
        model.item_embedding.weight.data += 0.5
        fresh = build_index(model, num_partitions=NUM_PARTITIONS, seed=0)
        scorer = ApproximateScorer(model, fresh, n_probe=2)
        assert np.isfinite(scorer.all_scores(np.array([0]))).any()
