"""Thread-safety hammer tests for the perf registries.

Before the observability PR the registries used bare dict
read-modify-write, so two threads incrementing the same counter could
lose updates (load, load, add, add, store, store).  These tests hammer
one shared registry from many threads and assert nothing is lost.
"""

from __future__ import annotations

import threading

import pytest

from repro.perf import CounterRegistry, StopwatchRegistry

THREADS = 8
INCREMENTS = 2_000


def _run_threads(worker, count=THREADS):
    """Start ``count`` workers behind a barrier and join them all."""
    barrier = threading.Barrier(count)

    def wrapped(index):
        barrier.wait()
        worker(index)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestCounterRegistryThreadSafety:
    def test_no_lost_increments_single_name(self):
        registry = CounterRegistry()

        def worker(_index):
            for _ in range(INCREMENTS):
                registry.add("hits")

        _run_threads(worker)
        assert registry.get("hits") == THREADS * INCREMENTS

    def test_no_lost_increments_mixed_names(self):
        registry = CounterRegistry()

        def worker(index):
            for step in range(INCREMENTS):
                registry.add("shared")
                registry.add(f"own.{index}", 2)
                if step % 50 == 0:
                    # Concurrent reads must not disturb the counts.
                    registry.counts()

        _run_threads(worker)
        assert registry.get("shared") == THREADS * INCREMENTS
        for index in range(THREADS):
            assert registry.get(f"own.{index}") == 2 * INCREMENTS

    def test_concurrent_merge_into_shared_target(self):
        target = CounterRegistry()

        def worker(_index):
            local = CounterRegistry()
            for _ in range(INCREMENTS):
                local.add("events")
            target.merge(local)

        _run_threads(worker)
        assert target.get("events") == THREADS * INCREMENTS


class TestStopwatchRegistryThreadSafety:
    def test_no_lost_records(self):
        registry = StopwatchRegistry()
        rounds = 500

        def worker(_index):
            for _ in range(rounds):
                registry.record("phase", 0.001)

        _run_threads(worker)
        stat = registry.stats()["phase"]
        assert stat.count == THREADS * rounds
        assert stat.total == pytest.approx(0.001 * THREADS * rounds)

    def test_scope_stacks_are_per_thread(self):
        """Nesting on one thread must not leak into another thread's
        qualified paths."""
        registry = StopwatchRegistry()
        rounds = 200

        def worker(index):
            for _ in range(rounds):
                with registry.timed(f"outer{index}"):
                    with registry.timed("inner"):
                        pass

        _run_threads(worker, count=4)
        stats = registry.stats()
        for index in range(4):
            assert stats[f"outer{index}"].count == rounds
            assert stats[f"outer{index}/inner"].count == rounds
        # No cross-thread path like outer0/outer1 or a bare "inner".
        assert "inner" not in stats
        cross = [
            path for path in stats
            if path.count("outer") > 1
        ]
        assert cross == []

    def test_concurrent_merge(self):
        target = StopwatchRegistry()
        rounds = 300

        def worker(_index):
            local = StopwatchRegistry()
            for _ in range(rounds):
                local.record("work", 0.002)
            target.merge(local)

        _run_threads(worker)
        stat = target.stats()["work"]
        assert stat.count == THREADS * rounds
        assert stat.total == pytest.approx(0.002 * THREADS * rounds)
