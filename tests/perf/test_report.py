"""Tests for the perf report rendering."""

from __future__ import annotations

import json

import pytest

from repro.perf import (
    CounterRegistry,
    PerfReport,
    StopwatchRegistry,
    format_report,
)


def make_registries():
    perf = StopwatchRegistry()
    perf.record("train", 8.0)
    perf.record("train/forward", 5.0)
    perf.record("train/backward", 2.0)
    perf.record("eval", 2.0)
    counters = CounterRegistry()
    counters.add("steps", 40)
    return perf, counters


class TestPerfReport:
    def test_from_registries_snapshots(self):
        perf, counters = make_registries()
        report = PerfReport.from_registries(perf, counters)
        assert report.timers["train"]["total"] == pytest.approx(8.0)
        assert report.counters == {"steps": 40}

    def test_total_seconds_counts_top_level_only(self):
        report = PerfReport.from_registries(*make_registries())
        # train (8) + eval (2); the nested scopes are already inside train.
        assert report.total_seconds() == pytest.approx(10.0)

    def test_to_json_round_trips(self):
        report = PerfReport.from_registries(*make_registries())
        payload = json.loads(report.to_json())
        assert payload["timers"]["eval"]["count"] == 1
        assert payload["counters"]["steps"] == 40

    def test_format_sorted_by_total_with_shares(self):
        report = PerfReport.from_registries(*make_registries())
        text = report.format(title="run breakdown")
        lines = text.splitlines()
        assert lines[0] == "run breakdown"
        # Largest scope first; share of the 10s grand total.
        assert lines[4].lstrip().startswith("train")
        assert "80.0%" in lines[4]
        assert "steps" in text

    def test_format_indents_nested_scopes(self):
        report = PerfReport.from_registries(*make_registries())
        text = report.format()
        forward_line = next(
            line for line in text.splitlines() if "forward" in line
        )
        assert forward_line.startswith("  forward")

    def test_empty_report_formats(self):
        text = PerfReport().format()
        assert "phase" in text  # header renders without divide-by-zero

    def test_format_report_convenience(self):
        perf, counters = make_registries()
        assert format_report(perf, counters) == PerfReport.from_registries(
            perf, counters
        ).format()
