"""Tests for the nested wall-clock timer registry."""

from __future__ import annotations

import pytest

from repro.perf import StopwatchRegistry, TimerStat


class TestTimerStat:
    def test_record_aggregates(self):
        stat = TimerStat()
        stat.record(1.0)
        stat.record(3.0)
        assert stat.count == 2
        assert stat.total == pytest.approx(4.0)
        assert stat.min == pytest.approx(1.0)
        assert stat.max == pytest.approx(3.0)
        assert stat.mean == pytest.approx(2.0)

    def test_empty_stat(self):
        stat = TimerStat()
        assert stat.mean == 0.0
        assert stat.as_dict()["min"] == 0.0  # inf sentinel never leaks

    def test_as_dict_keys(self):
        stat = TimerStat()
        stat.record(0.5)
        assert set(stat.as_dict()) == {"count", "total", "mean", "min", "max"}


class TestStopwatchRegistry:
    def test_scopes_nest_into_slash_paths(self):
        perf = StopwatchRegistry()
        with perf.timed("epoch"):
            with perf.timed("forward"):
                pass
            with perf.timed("eval"):
                with perf.timed("score"):
                    pass
        assert set(perf.stats()) == {
            "epoch", "epoch/forward", "epoch/eval", "epoch/eval/score",
        }

    def test_sibling_scopes_do_not_prefix_each_other(self):
        perf = StopwatchRegistry()
        with perf.timed("a"):
            pass
        with perf.timed("b"):
            pass
        assert set(perf.stats()) == {"a", "b"}

    def test_repeated_entries_aggregate(self):
        perf = StopwatchRegistry()
        for _ in range(5):
            with perf.timed("step"):
                pass
        assert perf.count("step") == 5
        assert perf.total("step") >= 0.0

    def test_unknown_path_reads_zero(self):
        perf = StopwatchRegistry()
        assert perf.total("nope") == 0.0
        assert perf.count("nope") == 0

    def test_parent_covers_children(self):
        perf = StopwatchRegistry()
        with perf.timed("outer"):
            with perf.timed("inner"):
                pass
        assert perf.total("outer") >= perf.total("outer/inner")

    def test_exclusive_total_subtracts_direct_children_only(self):
        perf = StopwatchRegistry()
        perf.record("run", 10.0)
        perf.record("run/eval", 4.0)
        perf.record("run/eval/score", 3.0)  # grandchild: inside run/eval
        assert perf.exclusive_total("run") == pytest.approx(6.0)
        assert perf.exclusive_total("run/eval") == pytest.approx(1.0)

    def test_exception_still_recorded_and_stack_unwound(self):
        perf = StopwatchRegistry()
        with pytest.raises(RuntimeError):
            with perf.timed("boom"):
                raise RuntimeError("x")
        assert perf.count("boom") == 1
        # The stack unwound: a new scope is top-level, not under "boom".
        with perf.timed("after"):
            pass
        assert "after" in perf.stats()

    def test_merge_combines_aggregates(self):
        a, b = StopwatchRegistry(), StopwatchRegistry()
        a.record("x", 1.0)
        b.record("x", 3.0)
        b.record("y", 2.0)
        a.merge(b)
        assert a.count("x") == 2
        assert a.total("x") == pytest.approx(4.0)
        assert a.stats()["x"].min == pytest.approx(1.0)
        assert a.stats()["x"].max == pytest.approx(3.0)
        assert a.total("y") == pytest.approx(2.0)

    def test_reset_clears_everything(self):
        perf = StopwatchRegistry()
        with perf.timed("x"):
            pass
        perf.reset()
        assert perf.stats() == {}

    def test_as_dict_sorted_and_json_safe(self):
        perf = StopwatchRegistry()
        perf.record("b", 1.0)
        perf.record("a", 2.0)
        payload = perf.as_dict()
        assert list(payload) == ["a", "b"]
        assert payload["a"]["total"] == pytest.approx(2.0)
