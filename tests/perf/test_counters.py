"""Tests for the event counter registry."""

from __future__ import annotations

import pytest

from repro.perf import CounterRegistry


class TestCounterRegistry:
    def test_add_creates_and_increments(self):
        counters = CounterRegistry()
        counters.add("steps")
        counters.add("steps", 4)
        assert counters.get("steps") == 5

    def test_unknown_counter_reads_zero(self):
        assert CounterRegistry().get("nope") == 0

    def test_rate(self):
        counters = CounterRegistry()
        counters.add("users", 100)
        assert counters.rate("users", 4.0) == pytest.approx(25.0)
        assert counters.rate("users", 0.0) == 0.0

    def test_as_dict_sorted(self):
        counters = CounterRegistry()
        counters.add("b", 2)
        counters.add("a", 1)
        assert list(counters.as_dict()) == ["a", "b"]

    def test_merge_adds(self):
        a, b = CounterRegistry(), CounterRegistry()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a.counts() == {"x": 3, "y": 3}

    def test_reset(self):
        counters = CounterRegistry()
        counters.add("x")
        counters.reset()
        assert counters.counts() == {}
